package client_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
)

// newSystem builds a Hare deployment with the given technique set so the
// client library's alternate code paths (no directory cache, no direct
// access, no broadcast, no distribution, no affinity) are exercised for
// functional correctness, not just performance.
func newSystem(t *testing.T, techniques core.Techniques) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Cores:            4,
		Servers:          4,
		Timeshare:        true,
		Techniques:       techniques,
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

// exerciseFS runs a representative POSIX sequence and checks the results; it
// is run once per technique configuration.
func exerciseFS(t *testing.T, sys *core.System) {
	t.Helper()
	cli := sys.NewClient(0)
	other := sys.NewClient(2)

	if err := cli.Mkdir("/app", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Mkdir("/app/logs", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}

	// Write a multi-block file, read it back from another core.
	payload := bytes.Repeat([]byte("technique-test "), 600)
	fd, err := cli.Open("/app/data.bin", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}
	rfd, err := other.Open("/app/data.bin", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := other.Read(rfd, got); err != nil {
		t.Fatal(err)
	}
	other.Close(rfd)
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-core read returned wrong data")
	}

	// Create several files, list, rename, remove.
	for i := 0; i < 12; i++ {
		fd, err := cli.Open(fmt.Sprintf("/app/f%02d", i), fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		cli.Close(fd)
	}
	ents, err := other.ReadDir("/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 14 { // 12 files + data.bin + logs
		t.Fatalf("readdir found %d entries", len(ents))
	}
	if err := cli.Rename("/app/f00", "/app/logs/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Stat("/app/logs/renamed"); err != nil {
		t.Fatalf("renamed file not visible from other core: %v", err)
	}
	for i := 1; i < 12; i++ {
		if err := other.Unlink(fmt.Sprintf("/app/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Unlink("/app/logs/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unlink("/app/data.bin"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Rmdir("/app/logs"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Rmdir("/app"); err != nil {
		t.Fatal(err)
	}
}

func TestClientCorrectUnderEveryTechniqueConfiguration(t *testing.T) {
	configs := map[string]func(*core.Techniques){
		"all-enabled":     func(*core.Techniques) {},
		"no-distribution": func(tq *core.Techniques) { tq.DirectoryDistribution = false },
		"no-broadcast":    func(tq *core.Techniques) { tq.DirectoryBroadcast = false },
		"no-direct":       func(tq *core.Techniques) { tq.DirectAccess = false },
		"no-dircache":     func(tq *core.Techniques) { tq.DirectoryCache = false },
		"no-affinity":     func(tq *core.Techniques) { tq.CreationAffinity = false },
	}
	for name, disable := range configs {
		name, disable := name, disable
		t.Run(name, func(t *testing.T) {
			tq := core.AllTechniques()
			disable(&tq)
			exerciseFS(t, newSystem(t, tq))
		})
	}
}

func TestDirectoryCacheInvalidationAcrossClients(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	a := sys.NewClient(0)
	b := sys.NewClient(1)

	if err := a.Mkdir("/shared", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	fd, err := a.Open("/shared/item", fsapi.OCreate, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	a.Close(fd)

	// b caches the lookup...
	if _, err := b.Stat("/shared/item"); err != nil {
		t.Fatal(err)
	}
	// ... a renames the entry away; the server sends b an invalidation.
	if err := a.Rename("/shared/item", "/shared/moved"); err != nil {
		t.Fatal(err)
	}
	// b must observe the change: the stale cached entry is dropped when the
	// invalidation queue is drained on the next lookup.
	if _, err := b.Stat("/shared/item"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("stale name still resolves on b: %v", err)
	}
	if _, err := b.Stat("/shared/moved"); err != nil {
		t.Fatalf("new name not visible on b: %v", err)
	}
	if b.Stats().Invalidations == 0 {
		t.Fatal("client b processed no invalidations")
	}
}

func TestNoDirectAccessStillSeesServerSideSizes(t *testing.T) {
	tq := core.AllTechniques()
	tq.DirectAccess = false
	sys := newSystem(t, tq)
	cli := sys.NewClient(0)
	fd, err := cli.Open("/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, []byte("no direct access")); err != nil {
		t.Fatal(err)
	}
	// Without direct access the write already went through the server, so
	// another client sees the size immediately even before close.
	other := sys.NewClient(1)
	st, err := other.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len("no direct access")) {
		t.Fatalf("size = %d", st.Size)
	}
	cli.Close(fd)
}

func TestClientStatsCounters(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/s", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	// Two stats of the same path: the second lookup hits the client cache.
	if _, err := cli.Stat("/s"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stat("/s"); err != nil {
		t.Fatal(err)
	}
	st := cli.Stats()
	if st.RPCs == 0 {
		t.Fatal("no RPCs counted")
	}
	if st.DirCacheHits == 0 {
		t.Fatal("directory cache hit not counted")
	}
	if cli.Options() != (sys.NewClient(1)).Options() {
		t.Fatal("options should be uniform across clients")
	}
	if cli.ID() == sys.NewClient(1).ID() {
		t.Fatal("client ids must be unique")
	}
}

func TestExecTransfersWorkingDirectory(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	procs := sys.Procs()
	h := procs.StartRoot(0, []string{"root"}, func(p *sched.Proc) int {
		fs := p.FS
		if err := fs.Mkdir("/wd", fsapi.MkdirOpt{}); err != nil {
			return 1
		}
		if err := fs.Chdir("/wd"); err != nil {
			return 1
		}
		child, err := p.Spawn([]string{"child"}, func(cp *sched.Proc) int {
			// The exec'd process inherits the working directory, so a
			// relative create lands under /wd.
			fd, err := cp.FS.Open("made-here", fsapi.OCreate, fsapi.Mode644)
			if err != nil {
				return 1
			}
			cp.FS.Close(fd)
			return 0
		}, true)
		if err != nil {
			return 1
		}
		if child.Wait() != 0 {
			return 1
		}
		if _, err := fs.Stat("/wd/made-here"); err != nil {
			return 1
		}
		return 0
	})
	if h.Wait() != 0 {
		t.Fatal("exec did not preserve the working directory")
	}
}
