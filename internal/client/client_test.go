package client_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/sched"
)

// newSystem builds a Hare deployment with the given technique set so the
// client library's alternate code paths (no directory cache, no direct
// access, no broadcast, no distribution, no affinity) are exercised for
// functional correctness, not just performance.
func newSystem(t *testing.T, techniques core.Techniques) *core.System {
	t.Helper()
	sys, err := core.New(core.Config{
		Cores:            4,
		Servers:          4,
		Timeshare:        true,
		Techniques:       techniques,
		Placement:        sched.PolicyRoundRobin,
		BufferCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

// exerciseFS runs a representative POSIX sequence and checks the results; it
// is run once per technique configuration.
func exerciseFS(t *testing.T, sys *core.System) {
	t.Helper()
	cli := sys.NewClient(0)
	other := sys.NewClient(2)

	if err := cli.Mkdir("/app", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Mkdir("/app/logs", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}

	// Write a multi-block file, read it back from another core.
	payload := bytes.Repeat([]byte("technique-test "), 600)
	fd, err := cli.Open("/app/data.bin", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}
	rfd, err := other.Open("/app/data.bin", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := other.Read(rfd, got); err != nil {
		t.Fatal(err)
	}
	other.Close(rfd)
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-core read returned wrong data")
	}

	// Create several files, list, rename, remove.
	for i := 0; i < 12; i++ {
		fd, err := cli.Open(fmt.Sprintf("/app/f%02d", i), fsapi.OCreate, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		cli.Close(fd)
	}
	ents, err := other.ReadDir("/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 14 { // 12 files + data.bin + logs
		t.Fatalf("readdir found %d entries", len(ents))
	}
	if err := cli.Rename("/app/f00", "/app/logs/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Stat("/app/logs/renamed"); err != nil {
		t.Fatalf("renamed file not visible from other core: %v", err)
	}
	for i := 1; i < 12; i++ {
		if err := other.Unlink(fmt.Sprintf("/app/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Unlink("/app/logs/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unlink("/app/data.bin"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Rmdir("/app/logs"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Rmdir("/app"); err != nil {
		t.Fatal(err)
	}
}

func TestClientCorrectUnderEveryTechniqueConfiguration(t *testing.T) {
	configs := map[string]func(*core.Techniques){
		"all-enabled":     func(*core.Techniques) {},
		"no-distribution": func(tq *core.Techniques) { tq.DirectoryDistribution = false },
		"no-broadcast":    func(tq *core.Techniques) { tq.DirectoryBroadcast = false },
		"no-direct":       func(tq *core.Techniques) { tq.DirectAccess = false },
		"no-dircache":     func(tq *core.Techniques) { tq.DirectoryCache = false },
		"no-affinity":     func(tq *core.Techniques) { tq.CreationAffinity = false },
		"no-pipelining":   func(tq *core.Techniques) { tq.RPCPipelining = false },
		"no-datapath":     func(tq *core.Techniques) { tq.DataPath = false },
		"no-direct-no-pipelining": func(tq *core.Techniques) {
			tq.DirectAccess = false
			tq.RPCPipelining = false
		},
		"no-direct-no-datapath": func(tq *core.Techniques) {
			tq.DirectAccess = false
			tq.DataPath = false
		},
	}
	for name, disable := range configs {
		name, disable := name, disable
		t.Run(name, func(t *testing.T) {
			tq := core.AllTechniques()
			disable(&tq)
			exerciseFS(t, newSystem(t, tq))
		})
	}
}

func TestDirectoryCacheInvalidationAcrossClients(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	a := sys.NewClient(0)
	b := sys.NewClient(1)

	if err := a.Mkdir("/shared", fsapi.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	fd, err := a.Open("/shared/item", fsapi.OCreate, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	a.Close(fd)

	// b caches the lookup...
	if _, err := b.Stat("/shared/item"); err != nil {
		t.Fatal(err)
	}
	// ... a renames the entry away; the server sends b an invalidation.
	if err := a.Rename("/shared/item", "/shared/moved"); err != nil {
		t.Fatal(err)
	}
	// b must observe the change: the stale cached entry is dropped when the
	// invalidation queue is drained on the next lookup.
	if _, err := b.Stat("/shared/item"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("stale name still resolves on b: %v", err)
	}
	if _, err := b.Stat("/shared/moved"); err != nil {
		t.Fatalf("new name not visible on b: %v", err)
	}
	if b.Stats().Invalidations == 0 {
		t.Fatal("client b processed no invalidations")
	}
}

func TestVersionSkipSurvivesSyncAndFsync(t *testing.T) {
	// Sync and Fsync bump the inode version via SET_SIZE; the descriptor's
	// consistency window must absorb those bumps so the eventual close still
	// records a version and the reopen skips invalidation.
	sys := newSystem(t, core.AllTechniques())
	c := sys.NewClient(0)
	payload := bytes.Repeat([]byte{0x5A}, 9000)

	for _, syncer := range []struct {
		name string
		call func(fd fsapi.FD) error
	}{
		{"sync", func(fsapi.FD) error { return c.Sync() }},
		{"fsync", func(fd fsapi.FD) error { return c.Fsync(fd) }},
	} {
		name := "/syncskip-" + syncer.name
		fd, err := c.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(fd, payload); err != nil {
			t.Fatal(err)
		}
		if err := syncer.call(fd); err != nil {
			t.Fatalf("%s: %v", syncer.name, err)
		}
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
		before := c.Stats().VersionSkips
		rfd, err := c.Open(name, fsapi.ORdOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		c.Close(rfd)
		if c.Stats().VersionSkips == before {
			t.Fatalf("reopen after %s+close did not take the version-skip path", syncer.name)
		}
	}
}

func TestNoDirectAccessStillSeesServerSideSizes(t *testing.T) {
	tq := core.AllTechniques()
	tq.DirectAccess = false
	sys := newSystem(t, tq)
	cli := sys.NewClient(0)
	fd, err := cli.Open("/f", fsapi.OCreate|fsapi.ORdWr, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, []byte("no direct access")); err != nil {
		t.Fatal(err)
	}
	// Without direct access the write already went through the server, so
	// another client sees the size immediately even before close.
	other := sys.NewClient(1)
	st, err := other.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len("no direct access")) {
		t.Fatalf("size = %d", st.Size)
	}
	cli.Close(fd)
}

func TestClientStatsCounters(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/s", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	// Two stats of the same path: the second lookup hits the client cache.
	if _, err := cli.Stat("/s"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stat("/s"); err != nil {
		t.Fatal(err)
	}
	st := cli.Stats()
	if st.RPCs == 0 {
		t.Fatal("no RPCs counted")
	}
	if st.DirCacheHits == 0 {
		t.Fatal("directory cache hit not counted")
	}
	if cli.Options() != (sys.NewClient(1)).Options() {
		t.Fatal("options should be uniform across clients")
	}
	if cli.ID() == sys.NewClient(1).ID() {
		t.Fatal("client ids must be unique")
	}
}

func TestExecTransfersWorkingDirectory(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	procs := sys.Procs()
	h := procs.StartRoot(0, []string{"root"}, func(p *sched.Proc) int {
		fs := p.FS
		if err := fs.Mkdir("/wd", fsapi.MkdirOpt{}); err != nil {
			return 1
		}
		if err := fs.Chdir("/wd"); err != nil {
			return 1
		}
		child, err := p.Spawn([]string{"child"}, func(cp *sched.Proc) int {
			// The exec'd process inherits the working directory, so a
			// relative create lands under /wd.
			fd, err := cp.FS.Open("made-here", fsapi.OCreate, fsapi.Mode644)
			if err != nil {
				return 1
			}
			cp.FS.Close(fd)
			return 0
		}, true)
		if err != nil {
			return 1
		}
		if child.Wait() != 0 {
			return 1
		}
		if _, err := fs.Stat("/wd/made-here"); err != nil {
			return 1
		}
		return 0
	})
	if h.Wait() != 0 {
		t.Fatal("exec did not preserve the working directory")
	}
}

func TestBatchedUnlinkSavesMessages(t *testing.T) {
	// A create+unlink pair with a warm directory cache: the unlink's RM_MAP
	// and UNLINK_INODE share one batch message, so the whole cycle costs
	// one message less than with pipelining off.
	count := func(tq core.Techniques) (perCycle uint64, batched uint64) {
		sys := newSystem(t, tq)
		cli := sys.NewClient(0)
		if err := cli.Mkdir("/u", fsapi.MkdirOpt{Distributed: true}); err != nil {
			t.Fatal(err)
		}
		const n = 20
		before := cli.Stats()
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("/u/f%03d", i)
			fd, err := cli.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.Close(fd); err != nil {
				t.Fatal(err)
			}
			if err := cli.Unlink(name); err != nil {
				t.Fatal(err)
			}
		}
		after := cli.Stats()
		return (after.RPCs - before.RPCs) / n, after.BatchedOps - before.BatchedOps
	}

	on, batched := count(core.AllTechniques())
	tqOff := core.AllTechniques()
	tqOff.RPCPipelining = false
	off, offBatched := count(tqOff)
	if offBatched != 0 {
		t.Fatalf("pipelining off batched %d ops", offBatched)
	}
	if batched == 0 {
		t.Fatal("pipelining on never used a batch")
	}
	if on >= off {
		t.Fatalf("messages per create/unlink cycle: on=%d off=%d; batching saved nothing", on, off)
	}
}

func TestBatchedUnlinkStaleCacheFallsBack(t *testing.T) {
	// Client b caches a lookup, client a rename-replaces the entry with a
	// different inode, and — before b drains the invalidation — b unlinks
	// the name. The compare-and-remove guard must keep b's stale cached
	// inode out of harm's way: the entry's current inode is the one that
	// must die, and the file it replaced must survive untouched.
	sys := newSystem(t, core.AllTechniques())
	a := sys.NewClient(0)
	b := sys.NewClient(1)

	if err := a.Mkdir("/sw", fsapi.MkdirOpt{}); err != nil {
		t.Fatal(err)
	}
	mk := func(name, content string) {
		fd, err := a.Open(name, fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Write(fd, []byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	mk("/sw/victim", "old inode")
	mk("/sw/other", "surviving inode")

	// b caches /sw/victim's (soon stale) inode.
	if _, err := b.Stat("/sw/victim"); err != nil {
		t.Fatal(err)
	}
	// a replaces the entry: /sw/victim now names other's inode.
	if err := a.Rename("/sw/other", "/sw/victim"); err != nil {
		t.Fatal(err)
	}
	// b unlinks through (potentially) stale cache state; whichever path the
	// client takes, the name must disappear and exactly one link must drop.
	if err := b.Unlink("/sw/victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Stat("/sw/victim"); !fsapi.IsErrno(err, fsapi.ENOENT) {
		t.Fatalf("unlinked name still resolves: %v", err)
	}
	ents, err := a.ReadDir("/sw")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("directory should be empty, has %d entries", len(ents))
	}
}

func TestReadaheadOnServerMediatedReads(t *testing.T) {
	tq := core.AllTechniques()
	tq.DirectAccess = false
	sys := newSystem(t, tq)
	cli := sys.NewClient(0)

	payload := bytes.Repeat([]byte("readahead-chunk "), 2048) // 32 KiB
	fd, err := cli.Open("/ra.bin", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}

	rfd, err := cli.Open("/ra.bin", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 4096)
	for {
		n, err := cli.Read(rfd, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if err := cli.Close(rfd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("sequential read with readahead returned wrong data")
	}
	if cli.Stats().Readaheads == 0 {
		t.Fatal("sequential server-mediated read issued no readaheads")
	}

	// A write between reads must invalidate the speculative chunk.
	wfd, err := cli.Open("/ra.bin", fsapi.ORdWr, 0)
	if err != nil {
		t.Fatal(err)
	}
	half := make([]byte, 4096)
	if _, err := cli.Read(wfd, half); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte("X"), 512)
	if _, err := cli.Pwrite(wfd, patch, 4096); err != nil {
		t.Fatal(err)
	}
	after := make([]byte, 512)
	if _, err := cli.Read(wfd, after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, patch) {
		t.Fatal("read after overlapping write returned stale readahead data")
	}
	cli.Close(wfd)
}

func TestSyncFlushesAllDirtyFiles(t *testing.T) {
	sys := newSystem(t, core.AllTechniques())
	cli := sys.NewClient(0)
	other := sys.NewClient(1)

	var fds []fsapi.FD
	for i := 0; i < 6; i++ {
		fd, err := cli.Open(fmt.Sprintf("/sync%02d", i), fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Write(fd, bytes.Repeat([]byte{byte(i + 1)}, 1000+100*i)); err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	if err := cli.Sync(); err != nil {
		t.Fatal(err)
	}
	// The size updates reached every touched server: another client
	// observes the sizes without any close having happened.
	for i := range fds {
		st, err := other.Stat(fmt.Sprintf("/sync%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size != int64(1000+100*i) {
			t.Fatalf("file %d size = %d after Sync", i, st.Size)
		}
	}
	for _, fd := range fds {
		if err := cli.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloseAllFlushesEveryDescriptor(t *testing.T) {
	for _, pipelining := range []bool{true, false} {
		tq := core.AllTechniques()
		tq.RPCPipelining = pipelining
		sys := newSystem(t, tq)
		cli := sys.NewClient(0)
		for i := 0; i < 5; i++ {
			fd, err := cli.Open(fmt.Sprintf("/ca%02d", i), fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Write(fd, bytes.Repeat([]byte{0xAB}, 777)); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				if _, err := cli.Dup(fd); err != nil {
					t.Fatal(err)
				}
			}
		}
		cli.CloseAll()
		if n := len(cli.OpenFDs()); n != 0 {
			t.Fatalf("pipelining=%v: %d descriptors survive CloseAll", pipelining, n)
		}
		// The coalesced close carried each file's size to its server.
		other := sys.NewClient(1)
		for i := 0; i < 5; i++ {
			st, err := other.Stat(fmt.Sprintf("/ca%02d", i))
			if err != nil {
				t.Fatal(err)
			}
			if st.Size != 777 {
				t.Fatalf("pipelining=%v: file %d size = %d after CloseAll", pipelining, i, st.Size)
			}
		}
	}
}

func TestReadaheadInvalidatedAcrossDescriptors(t *testing.T) {
	// A readahead issued through one descriptor must not survive a write
	// through a *different* descriptor of the same file: same-process
	// read-after-write holds regardless of which fd did the writing.
	tq := core.AllTechniques()
	tq.DirectAccess = false
	sys := newSystem(t, tq)
	cli := sys.NewClient(0)

	payload := bytes.Repeat([]byte("Z"), 16384)
	fd, err := cli.Open("/x.bin", fsapi.OCreate|fsapi.OWrOnly, fsapi.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}

	rfd, err := cli.Open("/x.bin", fsapi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	wfd, err := cli.Open("/x.bin", fsapi.OWrOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential read on rfd issues a readahead for [4096, 8192).
	buf := make([]byte, 4096)
	if _, err := cli.Read(rfd, buf); err != nil {
		t.Fatal(err)
	}
	if cli.Stats().Readaheads == 0 {
		t.Fatal("no readahead in flight; test setup is wrong")
	}
	// Write through the other descriptor into the speculative range.
	patch := bytes.Repeat([]byte("w"), 1024)
	if _, err := cli.Pwrite(wfd, patch, 4096); err != nil {
		t.Fatal(err)
	}
	// The next read on rfd covers the patched range and must see the write.
	if _, err := cli.Read(rfd, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:1024], patch) {
		t.Fatal("read served stale readahead data written before the cross-descriptor write")
	}
	cli.Close(rfd)
	cli.Close(wfd)
}
