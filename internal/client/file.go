package client

import (
	"repro/internal/fsapi"
	"repro/internal/ncc"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Open opens (and optionally creates) a file and returns a descriptor.
func (c *Client) Open(path string, flags int, mode fsapi.Mode) (_ fsapi.FD, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("open"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)

	if flags&fsapi.OCreate != 0 {
		return c.openCreate(abs, flags, mode)
	}
	ino, ftype, dist, err := c.resolvePath(abs)
	if err != nil {
		return -1, err
	}
	return c.openExisting(ino, ftype, dist, flags)
}

// openCreate implements open() with O_CREAT: it creates the inode and
// directory entry (coalescing the two RPCs when they land on the same
// server) or falls back to opening an existing file.
func (c *Client) openCreate(abs string, flags int, mode fsapi.Mode) (fsapi.FD, error) {
	parent, parentDist, name, err := c.resolveParent(abs)
	if err != nil {
		return -1, err
	}
	// Coalesced path: one message creates the inode, adds the directory
	// entry, and opens a descriptor (§3.6.3).
	resp, sent, rerr := c.coalescedCreate(parent, parentDist, name, &proto.Request{
		Op:        proto.OpCreateCoalesced,
		Dir:       parent,
		Name:      name,
		Mode:      mode,
		Ftype:     fsapi.TypeRegular,
		Exclusive: flags&fsapi.OExcl != 0,
		WantOpen:  true,
	})
	if rerr != nil {
		return -1, rerr
	}
	if sent {
		switch resp.Err {
		case fsapi.OK:
			c.cacheEntry(parent, name, dcacheEnt{ino: resp.Ino, ftype: resp.Ftype, dist: resp.Dist})
			c.noteVersion(resp.Ino, resp.Version)
			of := &openFile{
				ino:      resp.Ino,
				ftype:    resp.Ftype,
				flags:    flags,
				size:     0,
				verKnown: resp.Version,
			}
			return c.allocFD(of), nil
		case fsapi.EEXIST:
			if flags&fsapi.OExcl != 0 {
				return -1, fsapi.EEXIST
			}
			c.cacheEntry(parent, name, dcacheEnt{ino: resp.Ino, ftype: resp.Ftype, dist: resp.Dist})
			return c.openExisting(resp.Ino, resp.Ftype, resp.Dist, flags)
		default:
			return -1, resp.Err
		}
	}

	// Creation affinity placed the inode on a closer server than the entry
	// server: create the inode first, then add the entry.
	entrySrv, _ := c.routeEntry(parent, parentDist, name)
	inodeSrv := c.chooseInodeServer(entrySrv)
	mkResp, err := c.rpcOK(inodeSrv, &proto.Request{
		Op:    proto.OpMknod,
		Ftype: fsapi.TypeRegular,
		Mode:  mode,
	})
	if err != nil {
		return -1, err
	}
	addResp, aerr := c.routedEntryRPC(parent, parentDist, name, &proto.Request{
		Op:     proto.OpAddMap,
		Dir:    parent,
		Name:   name,
		Target: mkResp.Ino,
		Ftype:  fsapi.TypeRegular,
	})
	if aerr != nil {
		return -1, aerr
	}
	if addResp.Err == fsapi.EEXIST {
		// Lost a race (or the file simply existed): discard the orphan
		// inode and open the existing file.
		_, _ = c.rpc(inodeSrv, &proto.Request{Op: proto.OpUnlinkInode, Target: mkResp.Ino})
		if flags&fsapi.OExcl != 0 {
			return -1, fsapi.EEXIST
		}
		c.cacheEntry(parent, name, dcacheEnt{ino: addResp.Ino, ftype: addResp.Ftype, dist: addResp.Dist})
		return c.openExisting(addResp.Ino, addResp.Ftype, addResp.Dist, flags)
	}
	if addResp.Err != fsapi.OK {
		_, _ = c.rpc(inodeSrv, &proto.Request{Op: proto.OpUnlinkInode, Target: mkResp.Ino})
		return -1, addResp.Err
	}
	c.cacheEntry(parent, name, dcacheEnt{ino: mkResp.Ino, ftype: fsapi.TypeRegular, dist: false})
	openResp, oerr := c.rpcOK(inodeSrv, &proto.Request{
		Op:     proto.OpOpenInode,
		Target: mkResp.Ino,
		Flags:  int32(flags),
	})
	if oerr != nil {
		return -1, oerr
	}
	return c.allocFD(c.fileFromOpen(openResp, flags)), nil
}

// openExisting opens an inode that already exists.
func (c *Client) openExisting(ino proto.InodeID, ftype fsapi.FileType, dist bool, flags int) (fsapi.FD, error) {
	if ftype == fsapi.TypeDir && flags&fsapi.OAccMode != fsapi.ORdOnly {
		return -1, fsapi.EISDIR
	}
	resp, err := c.rpcOK(int(ino.Server), &proto.Request{
		Op:     proto.OpOpenInode,
		Target: ino,
		Flags:  int32(flags),
	})
	if err != nil {
		return -1, err
	}
	of := c.fileFromOpen(resp, flags)
	of.ftype = ftype
	// Close-to-open consistency: drop any stale private-cache copies of
	// this file's blocks so reads observe data written back by other cores
	// since the last close (§3.2). With the data path enabled, an OPEN reply
	// whose data version matches the one recorded at this client's last
	// consistency point proves nothing changed in DRAM since — the cached
	// copies are byte-identical and the invalidation is skipped outright
	// (DESIGN.md §8).
	if c.cfg.Options.DirectAccess && of.blocks.Len() > 0 {
		if v, ok := c.vcache.Get(of.ino); c.cfg.Options.DataPath && ok && v == resp.Version {
			c.cfg.Cache.NoteVersionSkip(of.blocks.Runs())
			c.stats.verSkips.Add(1)
		} else {
			dropped := c.cfg.Cache.InvalidateExtents(of.blocks.Runs())
			c.stats.invBlocks.Add(uint64(dropped))
			c.charge(sim.Cycles(dropped) * c.cfg.Machine.Cost.CachePerLine)
			c.noteVersion(of.ino, resp.Version)
		}
	}
	if flags&fsapi.OAppend != 0 {
		of.offset = of.size
	}
	return c.allocFD(of), nil
}

// fileFromOpen builds an openFile from an OPEN/CREATE response.
func (c *Client) fileFromOpen(resp *proto.Response, flags int) *openFile {
	of := &openFile{
		ino:      resp.Ino,
		ftype:    resp.Ftype,
		flags:    flags,
		size:     resp.Size,
		verKnown: resp.Version,
	}
	refreshBlocks(of, resp.Extents)
	return of
}

// refreshBlocks replaces the descriptor's block map with the extent-coded
// wire form (shared by open, GET_BLOCKS, EXTEND, and TRUNCATE responses).
func refreshBlocks(of *openFile, exts []proto.Extent) {
	of.blocks.Reset()
	for _, e := range exts {
		of.blocks.AppendRun(ncc.Extent{Start: ncc.BlockID(e.Start), Count: e.Count})
	}
}

// Close closes a descriptor, writing back dirty blocks and releasing the
// server-side reference when this is the last descriptor for the
// description.
func (c *Client) Close(fd fsapi.FD) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("close"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	delete(c.fds, fd)
	of.localRefs--
	if of.localRefs > 0 {
		return nil
	}
	req := c.closeRequest(of)
	resp, err := c.rpcOK(int(of.ino.Server), req)
	if err == nil && req.Op == proto.OpCloseInode {
		// A dirty close just wrote our data back and moved the version: the
		// cache IS the new contents. A clean close whose version still
		// matches proves nothing changed. Either way an intact window lets a
		// reopen at this version skip invalidation; a lost window (someone
		// else mutated the file while we held it open) evicts the entry.
		of.expectVersion(resp.Version, req.Dirty)
		c.settleVersion(of)
	}
	return err
}

// closeRequest prepares the release RPC for a description whose last local
// reference is gone: the pipe-end close, the shared-descriptor deref, or —
// after flushing dirty blocks — the inode close with the size update
// coalesced in (§3.6.3). Shared by Close and the pipelined CloseAll so the
// close semantics have one source of truth.
func (c *Client) closeRequest(of *openFile) *proto.Request {
	of.dropReadahead()
	switch {
	case of.pipe:
		op := proto.OpPipeCloseRead
		if of.pipeWrite {
			op = proto.OpPipeCloseWrite
		}
		return &proto.Request{Op: op, Target: of.ino}
	case of.srvFd != proto.NilFd:
		return &proto.Request{Op: proto.OpFdDecRef, Fd: of.srvFd, Target: of.ino}
	default:
		c.writebackFile(of)
		req := &proto.Request{Op: proto.OpCloseInode, Target: of.ino}
		if of.wrote {
			// Coalesce the size update with the close (§3.6.3), and tell the
			// server the data changed so it moves the inode's version.
			req.Size = of.size
			req.Dirty = true
		}
		return req
	}
}

// writebackFile flushes this file's dirty private-cache data to DRAM. The
// dirty set is normalized (sorted, overlaps merged) first, so blocks that
// several writes touched are neither flushed nor charged twice. With the
// data path enabled only the 64-byte lines actually written move; otherwise
// every dirty block is flushed in full (the paper's behavior).
func (c *Client) writebackFile(of *openFile) {
	if !c.cfg.Options.DirectAccess || len(of.dirty) == 0 {
		return
	}
	exts := ncc.NormalizeExtents(of.dirty)
	start := c.clock.Now()
	flushed, lines := c.cfg.Cache.WritebackExtents(exts, c.cfg.Options.DataPath)
	c.stats.wbBlocks.Add(uint64(flushed))
	c.charge(sim.LineCost(c.cfg.Machine.Cost.DRAMPerLine, lines*ncc.LineSize))
	if c.cur != nil {
		// Surface the line movement under the op that paid for it; Idx
		// carries the 64-byte line count so a slow close is attributable
		// to the data it flushed.
		c.charge(c.cfg.Machine.Cost.TraceSpan)
		c.tr.Record(trace.Span{
			Trace: c.cur.Trace, ID: c.tem.Next(), Parent: c.cur.ID,
			Kind: trace.KindWriteback, Name: "writeback", Where: c.cfg.ID,
			Start: start, End: c.clock.Now(), Idx: int32(lines),
		})
	}
	of.dirty = of.dirty[:0]
	of.dirtyNorm = 0
}

// Fsync forces dirty data for the descriptor back to the shared DRAM and
// updates the server's view of the file size.
func (c *Client) Fsync(fd fsapi.FD) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("fsync"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	if of.pipe {
		return fsapi.EINVAL
	}
	if of.srvFd != proto.NilFd {
		return nil // all writes already went through the server
	}
	c.writebackFile(of)
	if of.wrote {
		resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpSetSize, Target: of.ino, Size: of.size})
		if err != nil {
			return err
		}
		of.expectVersion(resp.Version, true)
		c.settleVersion(of)
	}
	return nil
}

// Read reads from the descriptor at its current offset.
func (c *Client) Read(fd fsapi.FD, p []byte) (_ int, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("read"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	switch {
	case of.pipe:
		return c.pipeRead(of, p)
	case of.srvFd != proto.NilFd:
		return c.sharedRead(of, p)
	default:
		if of.flags&fsapi.OAccMode == fsapi.OWrOnly {
			return 0, fsapi.EBADF
		}
		n, err := c.readAt(of, of.offset, p, true)
		of.offset += int64(n)
		return n, err
	}
}

// Pread reads at an explicit offset without moving the descriptor offset.
func (c *Client) Pread(fd fsapi.FD, p []byte, off int64) (_ int, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("pread"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	if of.srvFd != proto.NilFd {
		// Shared descriptors read through the server; pread does not
		// move the offset so a plain READ_AT suffices.
		resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpReadAt, Target: of.ino, Offset: off, Count: int32(len(p)),
		})
		if rerr != nil {
			return 0, rerr
		}
		return copy(p, resp.Data), nil
	}
	return c.readAt(of, off, p, false)
}

// Write writes at the descriptor's current offset.
func (c *Client) Write(fd fsapi.FD, p []byte) (_ int, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("write"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	switch {
	case of.pipe:
		return c.pipeWriteAll(of, p)
	case of.srvFd != proto.NilFd:
		return c.sharedWrite(of, p)
	default:
		if of.flags&fsapi.OAccMode == fsapi.ORdOnly {
			return 0, fsapi.EBADF
		}
		off := of.offset
		if of.flags&fsapi.OAppend != 0 {
			off = of.size
		}
		n, err := c.writeAt(of, off, p)
		of.offset = off + int64(n)
		return n, err
	}
}

// Pwrite writes at an explicit offset without moving the descriptor offset.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off int64) (_ int, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("pwrite"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	if of.srvFd != proto.NilFd {
		c.dropReadaheadsFor(of.ino)
		resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpWriteAt, Target: of.ino, Offset: off, Data: p,
		})
		if rerr != nil {
			return 0, rerr
		}
		return int(resp.N), nil
	}
	return c.writeAt(of, off, p)
}

// readAt reads file data for a locally tracked descriptor. With direct
// access the client reads the shared buffer cache through its private cache;
// otherwise it asks the server to read on its behalf — and, for sequential
// readers with pipelining on, keeps the next chunk's READ_AT in flight ahead
// of the cursor so the reply has (partially) propagated by the time it is
// needed (DESIGN.md §7).
func (c *Client) readAt(of *openFile, off int64, p []byte, sequential bool) (int, error) {
	if off >= of.size {
		return 0, nil
	}
	n := int64(len(p))
	if off+n > of.size {
		n = of.size - off
	}
	if !c.cfg.Options.DirectAccess {
		data, ok := c.takeReadahead(of, off, n)
		if !ok {
			resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
				Op: proto.OpReadAt, Target: of.ino, Offset: off, Count: int32(n),
			})
			if err != nil {
				return 0, err
			}
			data = resp.Data
		}
		if sequential {
			c.issueReadahead(of, off+n, len(p))
		}
		return copy(p, data), nil
	}
	if err := c.ensureBlocks(of, off+n); err != nil {
		return 0, err
	}
	return c.copyBlocks(of, off, p[:n], false), nil
}

// takeReadahead consumes the descriptor's in-flight readahead when it covers
// exactly the requested range; any other pending readahead is dropped
// unharvested (a mispredicted chunk costs its message, nothing else).
func (c *Client) takeReadahead(of *openFile, off, n int64) ([]byte, bool) {
	if of.raFut == nil {
		return nil, false
	}
	if of.raOff != off || int64(of.raN) < n {
		of.raFut = nil
		return nil, false
	}
	env, err := of.raFut.Await()
	of.raFut = nil
	if err != nil {
		return nil, false
	}
	c.clock.AdvanceTo(env.ArriveAt)
	c.charge(c.cfg.Machine.Cost.MsgRecv)
	resp, derr := proto.UnmarshalResponse(env.Payload)
	if derr != nil || resp.Err != fsapi.OK {
		return nil, false
	}
	return resp.Data, true
}

// issueReadahead speculatively requests the next chunk of a sequential
// server-mediated read stream. It is a no-op with pipelining off, with a
// readahead already pending, or at end of file.
func (c *Client) issueReadahead(of *openFile, off int64, n int) {
	if !c.cfg.Options.Pipelining || of.raFut != nil || n <= 0 || off >= of.size {
		return
	}
	if off+int64(n) > of.size {
		n = int(of.size - off)
	}
	fut, err := c.sendAsync(int(of.ino.Server), &proto.Request{
		Op: proto.OpReadAt, Target: of.ino, Offset: off, Count: int32(n),
	})
	if err != nil {
		return
	}
	of.raFut, of.raOff, of.raN = fut, off, n
	c.stats.readaheads.Add(1)
}

// dropReadahead abandons any in-flight readahead (the data it would return
// is about to become stale, or the descriptor is going away).
func (of *openFile) dropReadahead() { of.raFut = nil }

// dropReadaheadsFor invalidates the in-flight readahead of every descriptor
// this process holds on the given inode: a write through any descriptor
// makes their speculative chunks stale, and same-process read-after-write
// must hold regardless of which descriptor did the writing.
func (c *Client) dropReadaheadsFor(ino proto.InodeID) {
	for _, of := range c.fds {
		if of.ino == ino {
			of.dropReadahead()
		}
	}
}

// writeAt writes file data for a locally tracked descriptor.
func (c *Client) writeAt(of *openFile, off int64, p []byte) (int, error) {
	end := off + int64(len(p))
	if !c.cfg.Options.DirectAccess {
		// The write may overlap chunks already requested ahead of the
		// cursor — by this descriptor or by any other descriptor this
		// process holds on the file; their speculative data would be stale.
		c.dropReadaheadsFor(of.ino)
		resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpWriteAt, Target: of.ino, Offset: off, Data: p,
		})
		if err != nil {
			return 0, err
		}
		if end > of.size {
			of.size = end
		}
		of.wrote = true
		return int(resp.N), nil
	}
	if err := c.extendTo(of, end); err != nil {
		return 0, err
	}
	n := c.copyBlocks(of, off, p, true)
	if off+int64(n) > of.size {
		of.size = off + int64(n)
	}
	of.wrote = true
	return n, nil
}

// ensureBlocks refreshes the block list if the requested range extends past
// the blocks the client knows about (another process may have extended the
// file before our open; normally open returned the full list already).
func (c *Client) ensureBlocks(of *openFile, end int64) error {
	bs := int64(c.cfg.DRAM.BlockSize())
	if int64(of.blocks.Len())*bs >= end {
		return nil
	}
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpGetBlocks, Target: of.ino})
	if err != nil {
		return err
	}
	before := of.blocks.Len()
	refreshBlocks(of, resp.Extents)
	c.invalidateTail(of, before)
	// GET_BLOCKS never bumps; a moved version means another client extended
	// or wrote the file while we held it open.
	of.expectVersion(resp.Version, false)
	return nil
}

// extendTo asks the file server to allocate blocks so the file can hold end
// bytes, updating the client's block list. With pipelining on, the request
// allocates ahead of the cursor — doubling the current allocation — so a
// sequential writer issues O(log n) EXTEND RPCs instead of one per block
// boundary; the logical size is still set by CLOSE/SET_SIZE, so the
// over-allocation is invisible to stat and is reclaimed with the inode.
func (c *Client) extendTo(of *openFile, end int64) error {
	bs := int64(c.cfg.DRAM.BlockSize())
	if int64(of.blocks.Len())*bs >= end {
		return nil
	}
	want := end
	if c.cfg.Options.Pipelining {
		if ahead := 2 * int64(of.blocks.Len()) * bs; ahead > want {
			want = ahead
		}
	}
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpExtend, Target: of.ino, Size: want})
	if err != nil && want > end && fsapi.IsErrno(err, fsapi.ENOSPC) {
		// The speculative tail did not fit; retry with exactly what the
		// write needs.
		resp, err = c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpExtend, Target: of.ino, Size: end})
	}
	if err != nil {
		return err
	}
	before := of.blocks.Len()
	refreshBlocks(of, resp.Extents)
	c.invalidateTail(of, before)
	// EXTEND bumps the version exactly when the block map grew.
	of.expectVersion(resp.Version, of.blocks.Len() > before)
	return nil
}

// invalidateTail drops any stale cached copies of blocks the descriptor just
// learned about (an EXTEND or GET_BLOCKS grew its map). A newly allocated
// block may have had a previous life in another file on this core; a
// leftover clean copy would shadow the zeroed (or remotely written) DRAM
// contents.
func (c *Client) invalidateTail(of *openFile, from int) {
	if !c.cfg.Options.DirectAccess || from >= of.blocks.Len() {
		return
	}
	dropped := c.cfg.Cache.InvalidateExtents(of.blocks.TailRuns(from))
	if dropped > 0 {
		c.stats.invBlocks.Add(uint64(dropped))
		c.charge(sim.Cycles(dropped) * c.cfg.Machine.Cost.CachePerLine)
	}
}

// copyBlocks moves data between the caller's buffer and the buffer cache via
// the core's private cache, charging per-line costs for hits and misses.
func (c *Client) copyBlocks(of *openFile, off int64, p []byte, write bool) int {
	bs := int64(c.cfg.DRAM.BlockSize())
	cost := c.cfg.Machine.Cost
	moved := 0
	for moved < len(p) {
		pos := off + int64(moved)
		bi := int(pos / bs)
		bo := int(pos % bs)
		if bi >= of.blocks.Len() {
			break
		}
		block := of.blocks.At(bi)
		var n int
		var hit bool
		if write {
			n, hit = c.cfg.Cache.Write(block, bo, p[moved:])
			of.addDirty(block)
		} else {
			n, hit = c.cfg.Cache.Read(block, bo, p[moved:])
		}
		if n == 0 {
			break
		}
		per := cost.DRAMPerLine
		if hit {
			per = cost.CachePerLine
		}
		c.charge(sim.LineCost(per, n))
		moved += n
	}
	return moved
}

// addDirty records block b in the descriptor's dirty set. Sequential writes
// extend the last run in place and rewrites of the run's tail block are
// absorbed; anything else appends a new run, and writebackFile's
// normalization merges whatever overlaps remain. Writes that ping-pong
// between non-adjacent blocks would grow the list one run per write, so it
// is re-normalized in place whenever it gets long — bounding it at the
// file's true fragmentation plus a constant.
func (of *openFile) addDirty(b ncc.BlockID) {
	if n := len(of.dirty); n > 0 {
		last := &of.dirty[n-1]
		if last.End() == b {
			last.Count++
			return
		}
		if b >= last.Start && b < last.End() {
			return
		}
		if n >= 64 && n >= 2*of.dirtyNorm {
			of.dirty = ncc.NormalizeExtents(of.dirty)
			of.dirtyNorm = len(of.dirty)
		}
	}
	of.dirty = append(of.dirty, ncc.Extent{Start: b, Count: 1})
}

// Seek repositions a descriptor offset.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (_ int64, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("seek"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	if of.srvFd != proto.NilFd {
		resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpFdSeek, Fd: of.srvFd, Target: of.ino, Offset: off, Whence: int32(whence),
		})
		if rerr != nil {
			return 0, rerr
		}
		return resp.Offset, nil
	}
	var base int64
	switch whence {
	case fsapi.SeekSet:
		base = 0
	case fsapi.SeekCur:
		base = of.offset
	case fsapi.SeekEnd:
		base = of.size
	default:
		return 0, fsapi.EINVAL
	}
	pos := base + off
	if pos < 0 {
		return 0, fsapi.EINVAL
	}
	of.offset = pos
	return pos, nil
}

// Ftruncate truncates the open file to the given size.
func (c *Client) Ftruncate(fd fsapi.FD, size int64) (err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("ftruncate"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	if of.pipe || of.ftype != fsapi.TypeRegular {
		return fsapi.EINVAL
	}
	// Dirty blocks beyond the new size must not be written back later over
	// reused blocks; flush state first.
	c.writebackFile(of)
	c.dropReadaheadsFor(of.ino)
	resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpTruncate, Target: of.ino, Size: size})
	if rerr != nil {
		return rerr
	}
	of.size = resp.Size
	refreshBlocks(of, resp.Extents)
	// Drop every cached copy of the file's surviving blocks: a shrink just
	// zeroed the final block's tail in DRAM (our clean cached copy still
	// shows the old bytes), and a grow may have handed us newly allocated
	// blocks with stale previous-life copies on this core. The descriptor's
	// dirty data was written back above, so nothing of ours is lost.
	if c.cfg.Options.DirectAccess && of.blocks.Len() > 0 {
		dropped := c.cfg.Cache.InvalidateExtents(of.blocks.Runs())
		if dropped > 0 {
			c.stats.invBlocks.Add(uint64(dropped))
			c.charge(sim.Cycles(dropped) * c.cfg.Machine.Cost.CachePerLine)
		}
	}
	// The writeback above put our data in DRAM and TRUNCATE always bumps;
	// with the window intact the surviving cached blocks are consistent at
	// the new version.
	of.expectVersion(resp.Version, true)
	c.settleVersion(of)
	of.wrote = false
	return nil
}

// Stat returns metadata for a path.
func (c *Client) Stat(path string) (_ fsapi.Stat, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("stat"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	abs := c.absPath(path)
	ino, _, _, err := c.resolvePath(abs)
	if err != nil {
		return fsapi.Stat{}, err
	}
	resp, rerr := c.rpcOK(int(ino.Server), &proto.Request{Op: proto.OpStat, Target: ino})
	if rerr != nil {
		return fsapi.Stat{}, rerr
	}
	return statFromWire(resp.Stat), nil
}

// Fstat returns metadata for an open descriptor.
func (c *Client) Fstat(fd fsapi.FD) (_ fsapi.Stat, err error) {
	c.syscall()
	defer c.opDone()
	if s := c.beginOp("fstat"); s != nil {
		defer func() { c.endOp(s, err) }()
	}
	of, err := c.getFD(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	if of.pipe {
		return fsapi.Stat{Ino: of.ino.Local, Type: fsapi.TypePipe, Server: int(of.ino.Server)}, nil
	}
	resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpStat, Target: of.ino})
	if rerr != nil {
		return fsapi.Stat{}, rerr
	}
	return statFromWire(resp.Stat), nil
}

// statFromWire converts a wire stat into the public form.
func statFromWire(w proto.StatWire) fsapi.Stat {
	return fsapi.Stat{
		Ino:   w.Ino.Local,
		Type:  w.Ftype,
		Size:  w.Size,
		Nlink: int(w.Nlink),
		Mode:  w.Mode,
		Server: func() int {
			if w.Ino.IsNil() {
				return 0
			}
			return int(w.Ino.Server)
		}(),
	}
}
