package client

import (
	"repro/internal/fsapi"
	"repro/internal/ncc"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Open opens (and optionally creates) a file and returns a descriptor.
func (c *Client) Open(path string, flags int, mode fsapi.Mode) (fsapi.FD, error) {
	c.syscall()
	abs := c.absPath(path)

	if flags&fsapi.OCreate != 0 {
		return c.openCreate(abs, flags, mode)
	}
	ino, ftype, dist, err := c.resolvePath(abs)
	if err != nil {
		return -1, err
	}
	return c.openExisting(ino, ftype, dist, flags)
}

// openCreate implements open() with O_CREAT: it creates the inode and
// directory entry (coalescing the two RPCs when they land on the same
// server) or falls back to opening an existing file.
func (c *Client) openCreate(abs string, flags int, mode fsapi.Mode) (fsapi.FD, error) {
	parent, parentDist, name, err := c.resolveParent(abs)
	if err != nil {
		return -1, err
	}
	entrySrv := c.entryServer(parent, parentDist, name)
	inodeSrv := c.chooseInodeServer(entrySrv)

	if inodeSrv == entrySrv {
		// Coalesced path: one message creates the inode, adds the
		// directory entry, and opens a descriptor (§3.6.3).
		resp, rerr := c.rpc(entrySrv, &proto.Request{
			Op:        proto.OpCreateCoalesced,
			Dir:       parent,
			Name:      name,
			Mode:      mode,
			Ftype:     fsapi.TypeRegular,
			Exclusive: flags&fsapi.OExcl != 0,
			WantOpen:  true,
		})
		if rerr != nil {
			return -1, rerr
		}
		switch resp.Err {
		case fsapi.OK:
			c.cacheEntry(parent, name, dcacheEnt{ino: resp.Ino, ftype: resp.Ftype, dist: resp.Dist})
			of := &openFile{
				ino:   resp.Ino,
				ftype: resp.Ftype,
				flags: flags,
				size:  0,
				dirty: make(map[ncc.BlockID]struct{}),
			}
			return c.allocFD(of), nil
		case fsapi.EEXIST:
			if flags&fsapi.OExcl != 0 {
				return -1, fsapi.EEXIST
			}
			c.cacheEntry(parent, name, dcacheEnt{ino: resp.Ino, ftype: resp.Ftype, dist: resp.Dist})
			return c.openExisting(resp.Ino, resp.Ftype, resp.Dist, flags)
		default:
			return -1, resp.Err
		}
	}

	// Creation affinity placed the inode on a closer server than the entry
	// server: create the inode first, then add the entry.
	mkResp, err := c.rpcOK(inodeSrv, &proto.Request{
		Op:    proto.OpMknod,
		Ftype: fsapi.TypeRegular,
		Mode:  mode,
	})
	if err != nil {
		return -1, err
	}
	addResp, aerr := c.rpc(entrySrv, &proto.Request{
		Op:     proto.OpAddMap,
		Dir:    parent,
		Name:   name,
		Target: mkResp.Ino,
		Ftype:  fsapi.TypeRegular,
	})
	if aerr != nil {
		return -1, aerr
	}
	if addResp.Err == fsapi.EEXIST {
		// Lost a race (or the file simply existed): discard the orphan
		// inode and open the existing file.
		_, _ = c.rpc(inodeSrv, &proto.Request{Op: proto.OpUnlinkInode, Target: mkResp.Ino})
		if flags&fsapi.OExcl != 0 {
			return -1, fsapi.EEXIST
		}
		c.cacheEntry(parent, name, dcacheEnt{ino: addResp.Ino, ftype: addResp.Ftype, dist: addResp.Dist})
		return c.openExisting(addResp.Ino, addResp.Ftype, addResp.Dist, flags)
	}
	if addResp.Err != fsapi.OK {
		_, _ = c.rpc(inodeSrv, &proto.Request{Op: proto.OpUnlinkInode, Target: mkResp.Ino})
		return -1, addResp.Err
	}
	c.cacheEntry(parent, name, dcacheEnt{ino: mkResp.Ino, ftype: fsapi.TypeRegular, dist: false})
	openResp, oerr := c.rpcOK(inodeSrv, &proto.Request{
		Op:     proto.OpOpenInode,
		Target: mkResp.Ino,
		Flags:  int32(flags),
	})
	if oerr != nil {
		return -1, oerr
	}
	return c.allocFD(c.fileFromOpen(openResp, flags)), nil
}

// openExisting opens an inode that already exists.
func (c *Client) openExisting(ino proto.InodeID, ftype fsapi.FileType, dist bool, flags int) (fsapi.FD, error) {
	if ftype == fsapi.TypeDir && flags&fsapi.OAccMode != fsapi.ORdOnly {
		return -1, fsapi.EISDIR
	}
	resp, err := c.rpcOK(int(ino.Server), &proto.Request{
		Op:     proto.OpOpenInode,
		Target: ino,
		Flags:  int32(flags),
	})
	if err != nil {
		return -1, err
	}
	of := c.fileFromOpen(resp, flags)
	of.ftype = ftype
	// Close-to-open consistency: drop any stale private-cache copies of
	// this file's blocks so reads observe data written back by other cores
	// since the last close (§3.2).
	if c.cfg.Options.DirectAccess && len(of.blocks) > 0 {
		dropped := c.cfg.Cache.Invalidate(of.blocks)
		c.stats.invBlocks.Add(uint64(dropped))
		c.charge(sim.Cycles(dropped) * c.cfg.Machine.Cost.CachePerLine)
	}
	if flags&fsapi.OAppend != 0 {
		of.offset = of.size
	}
	return c.allocFD(of), nil
}

// fileFromOpen builds an openFile from an OPEN/CREATE response.
func (c *Client) fileFromOpen(resp *proto.Response, flags int) *openFile {
	of := &openFile{
		ino:   resp.Ino,
		ftype: resp.Ftype,
		flags: flags,
		size:  resp.Size,
		dirty: make(map[ncc.BlockID]struct{}),
	}
	refreshBlocks(of, resp.Blocks)
	return of
}

// refreshBlocks replaces the descriptor's block list with the server's wire
// form (shared by open, GET_BLOCKS, EXTEND, and TRUNCATE responses).
func refreshBlocks(of *openFile, blocks []uint64) {
	of.blocks = of.blocks[:0]
	for _, b := range blocks {
		of.blocks = append(of.blocks, ncc.BlockID(b))
	}
}

// Close closes a descriptor, writing back dirty blocks and releasing the
// server-side reference when this is the last descriptor for the
// description.
func (c *Client) Close(fd fsapi.FD) error {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	delete(c.fds, fd)
	of.localRefs--
	if of.localRefs > 0 {
		return nil
	}
	_, err = c.rpcOK(int(of.ino.Server), c.closeRequest(of))
	return err
}

// closeRequest prepares the release RPC for a description whose last local
// reference is gone: the pipe-end close, the shared-descriptor deref, or —
// after flushing dirty blocks — the inode close with the size update
// coalesced in (§3.6.3). Shared by Close and the pipelined CloseAll so the
// close semantics have one source of truth.
func (c *Client) closeRequest(of *openFile) *proto.Request {
	of.dropReadahead()
	switch {
	case of.pipe:
		op := proto.OpPipeCloseRead
		if of.pipeWrite {
			op = proto.OpPipeCloseWrite
		}
		return &proto.Request{Op: op, Target: of.ino}
	case of.srvFd != proto.NilFd:
		return &proto.Request{Op: proto.OpFdDecRef, Fd: of.srvFd, Target: of.ino}
	default:
		c.writebackFile(of)
		req := &proto.Request{Op: proto.OpCloseInode, Target: of.ino}
		if of.wrote {
			// Coalesce the size update with the close (§3.6.3).
			req.Size = of.size
		}
		return req
	}
}

// writebackFile flushes dirty private-cache blocks for the file to DRAM.
func (c *Client) writebackFile(of *openFile) {
	if !c.cfg.Options.DirectAccess || len(of.dirty) == 0 {
		return
	}
	blocks := make([]ncc.BlockID, 0, len(of.dirty))
	for b := range of.dirty {
		blocks = append(blocks, b)
	}
	flushed := c.cfg.Cache.Writeback(blocks)
	c.stats.wbBlocks.Add(uint64(flushed))
	c.charge(sim.LineCost(c.cfg.Machine.Cost.DRAMPerLine, flushed*c.cfg.DRAM.BlockSize()))
	of.dirty = make(map[ncc.BlockID]struct{})
}

// Fsync forces dirty data for the descriptor back to the shared DRAM and
// updates the server's view of the file size.
func (c *Client) Fsync(fd fsapi.FD) error {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	if of.pipe {
		return fsapi.EINVAL
	}
	if of.srvFd != proto.NilFd {
		return nil // all writes already went through the server
	}
	c.writebackFile(of)
	if of.wrote {
		if _, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpSetSize, Target: of.ino, Size: of.size}); err != nil {
			return err
		}
	}
	return nil
}

// Read reads from the descriptor at its current offset.
func (c *Client) Read(fd fsapi.FD, p []byte) (int, error) {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	switch {
	case of.pipe:
		return c.pipeRead(of, p)
	case of.srvFd != proto.NilFd:
		return c.sharedRead(of, p)
	default:
		if of.flags&fsapi.OAccMode == fsapi.OWrOnly {
			return 0, fsapi.EBADF
		}
		n, err := c.readAt(of, of.offset, p, true)
		of.offset += int64(n)
		return n, err
	}
}

// Pread reads at an explicit offset without moving the descriptor offset.
func (c *Client) Pread(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	if of.srvFd != proto.NilFd {
		// Shared descriptors read through the server; pread does not
		// move the offset so a plain READ_AT suffices.
		resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpReadAt, Target: of.ino, Offset: off, Count: int32(len(p)),
		})
		if rerr != nil {
			return 0, rerr
		}
		return copy(p, resp.Data), nil
	}
	return c.readAt(of, off, p, false)
}

// Write writes at the descriptor's current offset.
func (c *Client) Write(fd fsapi.FD, p []byte) (int, error) {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	switch {
	case of.pipe:
		return c.pipeWriteAll(of, p)
	case of.srvFd != proto.NilFd:
		return c.sharedWrite(of, p)
	default:
		if of.flags&fsapi.OAccMode == fsapi.ORdOnly {
			return 0, fsapi.EBADF
		}
		off := of.offset
		if of.flags&fsapi.OAppend != 0 {
			off = of.size
		}
		n, err := c.writeAt(of, off, p)
		of.offset = off + int64(n)
		return n, err
	}
}

// Pwrite writes at an explicit offset without moving the descriptor offset.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off int64) (int, error) {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	if of.srvFd != proto.NilFd {
		c.dropReadaheadsFor(of.ino)
		resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpWriteAt, Target: of.ino, Offset: off, Data: p,
		})
		if rerr != nil {
			return 0, rerr
		}
		return int(resp.N), nil
	}
	return c.writeAt(of, off, p)
}

// readAt reads file data for a locally tracked descriptor. With direct
// access the client reads the shared buffer cache through its private cache;
// otherwise it asks the server to read on its behalf — and, for sequential
// readers with pipelining on, keeps the next chunk's READ_AT in flight ahead
// of the cursor so the reply has (partially) propagated by the time it is
// needed (DESIGN.md §7).
func (c *Client) readAt(of *openFile, off int64, p []byte, sequential bool) (int, error) {
	if off >= of.size {
		return 0, nil
	}
	n := int64(len(p))
	if off+n > of.size {
		n = of.size - off
	}
	if !c.cfg.Options.DirectAccess {
		data, ok := c.takeReadahead(of, off, n)
		if !ok {
			resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
				Op: proto.OpReadAt, Target: of.ino, Offset: off, Count: int32(n),
			})
			if err != nil {
				return 0, err
			}
			data = resp.Data
		}
		if sequential {
			c.issueReadahead(of, off+n, len(p))
		}
		return copy(p, data), nil
	}
	if err := c.ensureBlocks(of, off+n); err != nil {
		return 0, err
	}
	return c.copyBlocks(of, off, p[:n], false), nil
}

// takeReadahead consumes the descriptor's in-flight readahead when it covers
// exactly the requested range; any other pending readahead is dropped
// unharvested (a mispredicted chunk costs its message, nothing else).
func (c *Client) takeReadahead(of *openFile, off, n int64) ([]byte, bool) {
	if of.raFut == nil {
		return nil, false
	}
	if of.raOff != off || int64(of.raN) < n {
		of.raFut = nil
		return nil, false
	}
	env, err := of.raFut.Await()
	of.raFut = nil
	if err != nil {
		return nil, false
	}
	c.clock.AdvanceTo(env.ArriveAt)
	c.charge(c.cfg.Machine.Cost.MsgRecv)
	resp, derr := proto.UnmarshalResponse(env.Payload)
	if derr != nil || resp.Err != fsapi.OK {
		return nil, false
	}
	return resp.Data, true
}

// issueReadahead speculatively requests the next chunk of a sequential
// server-mediated read stream. It is a no-op with pipelining off, with a
// readahead already pending, or at end of file.
func (c *Client) issueReadahead(of *openFile, off int64, n int) {
	if !c.cfg.Options.Pipelining || of.raFut != nil || n <= 0 || off >= of.size {
		return
	}
	if off+int64(n) > of.size {
		n = int(of.size - off)
	}
	fut, err := c.sendAsync(int(of.ino.Server), &proto.Request{
		Op: proto.OpReadAt, Target: of.ino, Offset: off, Count: int32(n),
	})
	if err != nil {
		return
	}
	of.raFut, of.raOff, of.raN = fut, off, n
	c.stats.readaheads.Add(1)
}

// dropReadahead abandons any in-flight readahead (the data it would return
// is about to become stale, or the descriptor is going away).
func (of *openFile) dropReadahead() { of.raFut = nil }

// dropReadaheadsFor invalidates the in-flight readahead of every descriptor
// this process holds on the given inode: a write through any descriptor
// makes their speculative chunks stale, and same-process read-after-write
// must hold regardless of which descriptor did the writing.
func (c *Client) dropReadaheadsFor(ino proto.InodeID) {
	for _, of := range c.fds {
		if of.ino == ino {
			of.dropReadahead()
		}
	}
}

// writeAt writes file data for a locally tracked descriptor.
func (c *Client) writeAt(of *openFile, off int64, p []byte) (int, error) {
	end := off + int64(len(p))
	if !c.cfg.Options.DirectAccess {
		// The write may overlap chunks already requested ahead of the
		// cursor — by this descriptor or by any other descriptor this
		// process holds on the file; their speculative data would be stale.
		c.dropReadaheadsFor(of.ino)
		resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpWriteAt, Target: of.ino, Offset: off, Data: p,
		})
		if err != nil {
			return 0, err
		}
		if end > of.size {
			of.size = end
		}
		of.wrote = true
		return int(resp.N), nil
	}
	if err := c.extendTo(of, end); err != nil {
		return 0, err
	}
	n := c.copyBlocks(of, off, p, true)
	if off+int64(n) > of.size {
		of.size = off + int64(n)
	}
	of.wrote = true
	return n, nil
}

// ensureBlocks refreshes the block list if the requested range extends past
// the blocks the client knows about (another process may have extended the
// file before our open; normally open returned the full list already).
func (c *Client) ensureBlocks(of *openFile, end int64) error {
	bs := int64(c.cfg.DRAM.BlockSize())
	if int64(len(of.blocks))*bs >= end {
		return nil
	}
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpGetBlocks, Target: of.ino})
	if err != nil {
		return err
	}
	refreshBlocks(of, resp.Blocks)
	return nil
}

// extendTo asks the file server to allocate blocks so the file can hold end
// bytes, updating the client's block list. With pipelining on, the request
// allocates ahead of the cursor — doubling the current allocation — so a
// sequential writer issues O(log n) EXTEND RPCs instead of one per block
// boundary; the logical size is still set by CLOSE/SET_SIZE, so the
// over-allocation is invisible to stat and is reclaimed with the inode.
func (c *Client) extendTo(of *openFile, end int64) error {
	bs := int64(c.cfg.DRAM.BlockSize())
	if int64(len(of.blocks))*bs >= end {
		return nil
	}
	want := end
	if c.cfg.Options.Pipelining {
		if ahead := 2 * int64(len(of.blocks)) * bs; ahead > want {
			want = ahead
		}
	}
	resp, err := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpExtend, Target: of.ino, Size: want})
	if err != nil && want > end && fsapi.IsErrno(err, fsapi.ENOSPC) {
		// The speculative tail did not fit; retry with exactly what the
		// write needs.
		resp, err = c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpExtend, Target: of.ino, Size: end})
	}
	if err != nil {
		return err
	}
	refreshBlocks(of, resp.Blocks)
	return nil
}

// copyBlocks moves data between the caller's buffer and the buffer cache via
// the core's private cache, charging per-line costs for hits and misses.
func (c *Client) copyBlocks(of *openFile, off int64, p []byte, write bool) int {
	bs := int64(c.cfg.DRAM.BlockSize())
	cost := c.cfg.Machine.Cost
	moved := 0
	for moved < len(p) {
		pos := off + int64(moved)
		bi := int(pos / bs)
		bo := int(pos % bs)
		if bi >= len(of.blocks) {
			break
		}
		block := of.blocks[bi]
		var n int
		var hit bool
		if write {
			n, hit = c.cfg.Cache.Write(block, bo, p[moved:])
			of.dirty[block] = struct{}{}
		} else {
			n, hit = c.cfg.Cache.Read(block, bo, p[moved:])
		}
		if n == 0 {
			break
		}
		per := cost.DRAMPerLine
		if hit {
			per = cost.CachePerLine
		}
		c.charge(sim.LineCost(per, n))
		moved += n
	}
	return moved
}

// Seek repositions a descriptor offset.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe {
		return 0, fsapi.ESPIPE
	}
	if of.srvFd != proto.NilFd {
		resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{
			Op: proto.OpFdSeek, Fd: of.srvFd, Target: of.ino, Offset: off, Whence: int32(whence),
		})
		if rerr != nil {
			return 0, rerr
		}
		return resp.Offset, nil
	}
	var base int64
	switch whence {
	case fsapi.SeekSet:
		base = 0
	case fsapi.SeekCur:
		base = of.offset
	case fsapi.SeekEnd:
		base = of.size
	default:
		return 0, fsapi.EINVAL
	}
	pos := base + off
	if pos < 0 {
		return 0, fsapi.EINVAL
	}
	of.offset = pos
	return pos, nil
}

// Ftruncate truncates the open file to the given size.
func (c *Client) Ftruncate(fd fsapi.FD, size int64) error {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return err
	}
	if of.pipe || of.ftype != fsapi.TypeRegular {
		return fsapi.EINVAL
	}
	// Dirty blocks beyond the new size must not be written back later over
	// reused blocks; flush state first.
	c.writebackFile(of)
	c.dropReadaheadsFor(of.ino)
	resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpTruncate, Target: of.ino, Size: size})
	if rerr != nil {
		return rerr
	}
	of.size = resp.Size
	refreshBlocks(of, resp.Blocks)
	of.wrote = false
	return nil
}

// Stat returns metadata for a path.
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	c.syscall()
	abs := c.absPath(path)
	ino, _, _, err := c.resolvePath(abs)
	if err != nil {
		return fsapi.Stat{}, err
	}
	resp, rerr := c.rpcOK(int(ino.Server), &proto.Request{Op: proto.OpStat, Target: ino})
	if rerr != nil {
		return fsapi.Stat{}, rerr
	}
	return statFromWire(resp.Stat), nil
}

// Fstat returns metadata for an open descriptor.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	c.syscall()
	of, err := c.getFD(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	if of.pipe {
		return fsapi.Stat{Ino: of.ino.Local, Type: fsapi.TypePipe, Server: int(of.ino.Server)}, nil
	}
	resp, rerr := c.rpcOK(int(of.ino.Server), &proto.Request{Op: proto.OpStat, Target: of.ino})
	if rerr != nil {
		return fsapi.Stat{}, rerr
	}
	return statFromWire(resp.Stat), nil
}

// statFromWire converts a wire stat into the public form.
func statFromWire(w proto.StatWire) fsapi.Stat {
	return fsapi.Stat{
		Ino:   w.Ino.Local,
		Type:  w.Ftype,
		Size:  w.Size,
		Nlink: int(w.Nlink),
		Mode:  w.Mode,
		Server: func() int {
			if w.Ino.IsNil() {
				return 0
			}
			return int(w.Ino.Server)
		}(),
	}
}
