package ncc

import (
	"bytes"
	"testing"

	"repro/internal/shadow"
)

// Tests for the zero-waste data path primitives: extent lists, dirty-line
// bitmaps, and the ranged writeback/invalidate variants, including a
// randomized property test against a flat shadow model.

func TestExtentListAppendAndAt(t *testing.T) {
	var l ExtentList
	blocks := []BlockID{4, 5, 6, 10, 11, 3, 7, 8}
	for _, b := range blocks {
		l.Append(b)
	}
	if l.Len() != len(blocks) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(blocks))
	}
	if l.NumRuns() != 4 {
		t.Fatalf("NumRuns = %d, want 4 (%+v)", l.NumRuns(), l.Runs())
	}
	for i, want := range blocks {
		if got := l.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
	tail := l.TailRuns(4)
	want := []Extent{{Start: 11, Count: 1}, {Start: 3, Count: 1}, {Start: 7, Count: 2}}
	if len(tail) != len(want) {
		t.Fatalf("TailRuns(4) = %+v, want %+v", tail, want)
	}
	for i := range want {
		if tail[i] != want[i] {
			t.Fatalf("TailRuns(4)[%d] = %+v, want %+v", i, tail[i], want[i])
		}
	}
	if l.TailRuns(len(blocks)) != nil {
		t.Fatal("TailRuns past the end should be nil")
	}
	l.Reset()
	if l.Len() != 0 || l.NumRuns() != 0 {
		t.Fatal("Reset did not empty the list")
	}
}

func TestNormalizeExtentsMergesOverlaps(t *testing.T) {
	exts := []Extent{
		{Start: 10, Count: 3}, // [10,13)
		{Start: 2, Count: 2},  // [2,4)
		{Start: 11, Count: 4}, // [11,15) overlaps the first
		{Start: 4, Count: 1},  // adjacent to [2,4)
		{Start: 12, Count: 1}, // contained
	}
	norm := NormalizeExtents(exts)
	want := []Extent{{Start: 2, Count: 3}, {Start: 10, Count: 5}}
	if len(norm) != len(want) {
		t.Fatalf("normalize = %+v, want %+v", norm, want)
	}
	for i := range want {
		if norm[i] != want[i] {
			t.Fatalf("normalize[%d] = %+v, want %+v", i, norm[i], want[i])
		}
	}
	if ExtentBlocks(norm) != 8 {
		t.Fatalf("ExtentBlocks = %d, want 8", ExtentBlocks(norm))
	}
	for _, b := range []BlockID{2, 3, 4, 10, 14} {
		if !extentsContain(norm, b) {
			t.Fatalf("extentsContain(%d) = false", b)
		}
	}
	for _, b := range []BlockID{1, 5, 9, 15} {
		if extentsContain(norm, b) {
			t.Fatalf("extentsContain(%d) = true", b)
		}
	}
}

func TestDirtyLineWritebackMovesOnlyWrittenLines(t *testing.T) {
	d := NewDRAM(4, 4*LineSize)
	c := NewPrivateCache(d)

	// Another core's data sits in DRAM line 1 of block 0.
	theirs := bytes.Repeat([]byte{0xAA}, LineSize)
	d.WriteDirect(0, LineSize, theirs)

	// This core caches the block, then writes only line 3.
	buf := make([]byte, LineSize)
	c.Read(0, 0, buf[:1])
	ours := bytes.Repeat([]byte{0x55}, LineSize)
	c.Write(0, 3*LineSize, ours)
	if got := c.DirtyLines(0); got != 1 {
		t.Fatalf("DirtyLines = %d, want 1", got)
	}

	// Meanwhile DRAM line 1 changes again (the other core wrote back).
	newer := bytes.Repeat([]byte{0xBB}, LineSize)
	d.WriteDirect(0, LineSize, newer)

	blocks, lines := c.WritebackExtents([]Extent{{Start: 0, Count: 4}}, true)
	if blocks != 1 || lines != 1 {
		t.Fatalf("writeback moved %d blocks / %d lines, want 1/1", blocks, lines)
	}
	// The dirty-line writeback must not have clobbered line 1 with the stale
	// cached copy; a full-block writeback would have.
	got := make([]byte, LineSize)
	d.ReadDirect(0, LineSize, got)
	if !bytes.Equal(got, newer) {
		t.Fatal("dirty-line writeback clobbered a clean line with stale data")
	}
	d.ReadDirect(0, 3*LineSize, got)
	if !bytes.Equal(got, ours) {
		t.Fatal("dirty line did not reach DRAM")
	}
	if c.Dirty(0) {
		t.Fatal("block still dirty after writeback")
	}
}

// toRuns converts ncc extents to the shared shadow package's block runs.
func toRuns(exts []Extent) []shadow.Run {
	out := make([]shadow.Run, len(exts))
	for i, e := range exts {
		out[i] = shadow.Run{Start: uint64(e.Start), Count: e.Count}
	}
	return out
}

// TestDataPathPropertyAgainstShadow drives random write / read / writeback /
// invalidate / remote-DRAM-write sequences through the private cache and the
// shared flat shadow model (shadow.Blocks), asserting byte-equality of every
// read and of DRAM after every writeback, and that lines moved never exceed
// lines written.
func TestDataPathPropertyAgainstShadow(t *testing.T) {
	const (
		numBlocks = 12
		blockSize = 4 * LineSize
		rounds    = 4000
		seed      = uint64(0xDEADBEEFCAFE)
	)
	d := NewDRAM(numBlocks, blockSize)
	c := NewPrivateCache(d)
	ref := shadow.NewBlocks(blockSize, LineSize)

	// On any failure the seed is in the log, so the run is replayable.
	t.Logf("datapath property seed: %#x", seed)
	rng := seed
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}

	var linesWritten, linesMoved int
	// randExtents produces one or two runs, deliberately unsorted and
	// possibly overlapping — block maps arrive in file order, which under
	// LIFO allocation means descending block ids.
	randExtents := func() []Extent {
		start := BlockID(next(numBlocks))
		count := uint64(1 + next(numBlocks-int(start)))
		exts := []Extent{{Start: start, Count: count}}
		if next(2) == 0 {
			s2 := BlockID(next(numBlocks))
			exts = append(exts, Extent{Start: s2, Count: uint64(1 + next(numBlocks-int(s2)))})
		}
		return exts
	}

	for i := 0; i < rounds; i++ {
		b := BlockID(next(numBlocks))
		off := next(blockSize - 1)
		n := 1 + next(blockSize-off)
		switch next(5) {
		case 0: // direct-access write through the cache
			src := make([]byte, n)
			for j := range src {
				src[j] = byte(next(256))
			}
			wrote, _ := c.Write(b, off, src)
			ref.Write(uint64(b), off, src[:wrote])
			if wrote > 0 {
				linesWritten += (off+wrote-1)/LineSize - off/LineSize + 1
			}
		case 1: // read through the cache: must equal the shadow's view
			got := make([]byte, n)
			read, _ := c.Read(b, off, got)
			want := ref.Resident(uint64(b))[off : off+read]
			if !bytes.Equal(got[:read], want) {
				t.Fatalf("round %d: read block %d off %d diverged from shadow", i, b, off)
			}
		case 2: // ranged dirty-line writeback
			exts := randExtents()
			_, lines := c.WritebackExtents(exts, true)
			wantLines := ref.Writeback(toRuns(exts))
			if lines != wantLines {
				t.Fatalf("round %d: writeback moved %d lines, shadow says %d", i, lines, wantLines)
			}
			linesMoved += lines
		case 3: // ranged invalidation
			exts := randExtents()
			c.InvalidateExtents(exts)
			ref.Invalidate(toRuns(exts))
		case 4: // another core writes DRAM directly (its own writeback)
			src := make([]byte, n)
			for j := range src {
				src[j] = byte(next(256))
			}
			d.WriteDirect(b, off, src)
			ref.WriteDRAM(uint64(b), off, src)
		}
		// DRAM must match the shadow DRAM everywhere, every few rounds.
		if i%97 == 0 {
			for blk := 0; blk < numBlocks; blk++ {
				got := make([]byte, blockSize)
				d.ReadDirect(BlockID(blk), 0, got)
				if !bytes.Equal(got, ref.DRAM(uint64(blk))) {
					t.Fatalf("round %d: DRAM block %d diverged from shadow", i, blk)
				}
			}
		}
	}
	if linesMoved > linesWritten {
		t.Fatalf("moved %d lines but only %d were written: writeback moved clean data", linesMoved, linesWritten)
	}
	if linesMoved == 0 || linesWritten == 0 {
		t.Fatal("property test exercised no writebacks; widen the op mix")
	}
	st := c.Stats()
	if st.LinesWB != uint64(linesMoved) {
		t.Fatalf("stats LinesWB = %d, observed %d", st.LinesWB, linesMoved)
	}
}

// BenchmarkWritebackExtents measures the ranged dirty-line flush over a
// cache with many resident blocks and a sparse dirty set.
func BenchmarkWritebackExtents(b *testing.B) {
	const numBlocks = 4096
	d := NewDRAM(numBlocks, 4096)
	c := NewPrivateCache(d)
	buf := make([]byte, 64)
	for i := 0; i < numBlocks; i++ {
		c.Read(BlockID(i), 0, buf) // make resident
	}
	exts := []Extent{{Start: 0, Count: numBlocks}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(BlockID(i%numBlocks), 128, buf)
		c.WritebackExtents(exts, true)
	}
}

// BenchmarkExtentListAt measures random access into a fragmented block map.
func BenchmarkExtentListAt(b *testing.B) {
	var l ExtentList
	for i := 0; i < 1024; i++ {
		l.Append(BlockID(i * 2)) // fully fragmented: one run per block
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.At(i%1024) != BlockID((i%1024)*2) {
			b.Fatal("wrong block")
		}
	}
}
