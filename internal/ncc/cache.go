package ncc

import "sync"

// PrivateCache models one core's private (L1/L2) cache over the shared DRAM.
// It is a write-back cache with no hardware coherence: a cached copy can be
// stale with respect to DRAM, and dirty data is invisible to other cores
// until written back.
//
// A PrivateCache may be used by several simulated entities pinned to the same
// core, so it is internally synchronized; it is still "private" in the sense
// that no other core's cache observes its contents.
type PrivateCache struct {
	dram *DRAM

	mu    sync.Mutex
	lines map[BlockID]*cachedBlock

	// statistics
	hits       uint64
	misses     uint64
	writebacks uint64
	invalidns  uint64
}

type cachedBlock struct {
	data  []byte
	dirty bool
}

// NewPrivateCache creates an empty private cache over the given DRAM.
func NewPrivateCache(d *DRAM) *PrivateCache {
	return &PrivateCache{
		dram:  d,
		lines: make(map[BlockID]*cachedBlock),
	}
}

// DRAM returns the shared memory behind this cache.
func (c *PrivateCache) DRAM() *DRAM { return c.dram }

// fetch returns the cached copy of b, loading it from DRAM on a miss.
// The caller must hold c.mu.
func (c *PrivateCache) fetch(b BlockID) *cachedBlock {
	if cb, ok := c.lines[b]; ok {
		c.hits++
		return cb
	}
	c.misses++
	cb := &cachedBlock{data: make([]byte, c.dram.BlockSize())}
	c.dram.read(b, 0, cb.data)
	c.lines[b] = cb
	return cb
}

// Read copies data from the (possibly stale) cached copy of block b starting
// at off into dst. It returns the number of bytes copied and whether the
// access hit in the private cache (misses are charged DRAM latency by the
// caller).
func (c *PrivateCache) Read(b BlockID, off int, dst []byte) (n int, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, hit = c.lines[b]
	cb := c.fetch(b)
	if off >= len(cb.data) {
		return 0, hit
	}
	return copy(dst, cb.data[off:]), hit
}

// Write copies src into the cached copy of block b at off and marks the block
// dirty. The data is NOT visible in DRAM until Writeback. Returns bytes
// written and whether the block was already cached.
func (c *PrivateCache) Write(b BlockID, off int, src []byte) (n int, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, hit = c.lines[b]
	cb := c.fetch(b)
	if off >= len(cb.data) {
		return 0, hit
	}
	n = copy(cb.data[off:], src)
	if n > 0 {
		cb.dirty = true
	}
	return n, hit
}

// Invalidate drops any cached copies of the given blocks, discarding dirty
// data. Hare calls this on open() so subsequent reads observe the latest
// data written back by other cores. It returns the number of blocks that
// were actually cached (for cost accounting).
func (c *PrivateCache) Invalidate(blocks []BlockID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for _, b := range blocks {
		if _, ok := c.lines[b]; ok {
			delete(c.lines, b)
			dropped++
		}
	}
	c.invalidns += uint64(dropped)
	return dropped
}

// Writeback flushes dirty cached copies of the given blocks to DRAM, leaving
// clean copies in the cache. Hare calls this on close() and fsync(). It
// returns the number of blocks flushed.
func (c *PrivateCache) Writeback(blocks []BlockID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushed := 0
	for _, b := range blocks {
		cb, ok := c.lines[b]
		if !ok || !cb.dirty {
			continue
		}
		c.dram.write(b, 0, cb.data)
		cb.dirty = false
		flushed++
	}
	c.writebacks += uint64(flushed)
	return flushed
}

// InvalidateAll drops the entire cache contents (used when a simulated
// process migrates or when resetting between experiments).
func (c *PrivateCache) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.lines)
	c.lines = make(map[BlockID]*cachedBlock)
	c.invalidns += uint64(n)
	return n
}

// WritebackAll flushes every dirty block to DRAM.
func (c *PrivateCache) WritebackAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushed := 0
	for b, cb := range c.lines {
		if cb.dirty {
			c.dram.write(b, 0, cb.data)
			cb.dirty = false
			flushed++
		}
	}
	c.writebacks += uint64(flushed)
	return flushed
}

// Dirty reports whether block b has dirty (not yet written back) data.
func (c *PrivateCache) Dirty(b BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cb, ok := c.lines[b]
	return ok && cb.dirty
}

// Cached reports whether block b currently has a cached copy.
func (c *PrivateCache) Cached(b BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.lines[b]
	return ok
}

// CacheStats is a snapshot of a private cache's counters.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	Writebacks  uint64
	Invalidated uint64
	Resident    int
}

// Stats returns a snapshot of the cache counters.
func (c *PrivateCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Writebacks:  c.writebacks,
		Invalidated: c.invalidns,
		Resident:    len(c.lines),
	}
}
