package ncc

import "sync"

// LineSize is the coherence granularity of the software-managed data path:
// writeback and invalidation costs are charged per 64-byte line, matching the
// hardware cache line the paper's cost figures are expressed in.
const LineSize = 64

// PrivateCache models one core's private (L1/L2) cache over the shared DRAM.
// It is a write-back cache with no hardware coherence: a cached copy can be
// stale with respect to DRAM, and dirty data is invisible to other cores
// until written back.
//
// A PrivateCache may be used by several simulated entities pinned to the same
// core, so it is internally synchronized; it is still "private" in the sense
// that no other core's cache observes its contents.
type PrivateCache struct {
	dram *DRAM

	mu    sync.Mutex
	lines map[BlockID]*cachedBlock

	// statistics
	hits       uint64
	misses     uint64
	writebacks uint64
	invalidns  uint64
	// Data-movement counters for the zero-waste data path (DESIGN.md §8):
	// 64-byte lines actually flushed to DRAM, lines dropped by invalidation,
	// and lines a version-matched open did NOT have to drop.
	linesWB      uint64
	linesInv     uint64
	linesSkipped uint64
}

// cachedBlock is one resident block copy. dirty is the per-64-byte-line dirty
// bitmap (bit i = line i modified since the last writeback); a block is dirty
// iff any bit is set.
type cachedBlock struct {
	data  []byte
	dirty []uint64
}

// numLines returns how many 64-byte lines the block spans.
func (cb *cachedBlock) numLines() int { return (len(cb.data) + LineSize - 1) / LineSize }

// isDirty reports whether any line is dirty.
func (cb *cachedBlock) isDirty() bool {
	for _, w := range cb.dirty {
		if w != 0 {
			return true
		}
	}
	return false
}

// markLines sets the dirty bits for the lines spanning [off, off+n).
func (cb *cachedBlock) markLines(off, n int) {
	if n <= 0 {
		return
	}
	if cb.dirty == nil {
		cb.dirty = make([]uint64, (cb.numLines()+63)/64)
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		cb.dirty[l/64] |= 1 << (uint(l) % 64)
	}
}

// dirtyLineCount returns the number of dirty lines.
func (cb *cachedBlock) dirtyLineCount() int {
	n := 0
	for _, w := range cb.dirty {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// clearDirty marks every line clean.
func (cb *cachedBlock) clearDirty() {
	for i := range cb.dirty {
		cb.dirty[i] = 0
	}
}

// NewPrivateCache creates an empty private cache over the given DRAM.
func NewPrivateCache(d *DRAM) *PrivateCache {
	return &PrivateCache{
		dram:  d,
		lines: make(map[BlockID]*cachedBlock),
	}
}

// DRAM returns the shared memory behind this cache.
func (c *PrivateCache) DRAM() *DRAM { return c.dram }

// fetch returns the cached copy of b, loading it from DRAM on a miss.
// The caller must hold c.mu.
func (c *PrivateCache) fetch(b BlockID) *cachedBlock {
	if cb, ok := c.lines[b]; ok {
		c.hits++
		return cb
	}
	c.misses++
	cb := &cachedBlock{data: make([]byte, c.dram.BlockSize())}
	c.dram.read(b, 0, cb.data)
	c.lines[b] = cb
	return cb
}

// Read copies data from the (possibly stale) cached copy of block b starting
// at off into dst. It returns the number of bytes copied and whether the
// access hit in the private cache (misses are charged DRAM latency by the
// caller).
func (c *PrivateCache) Read(b BlockID, off int, dst []byte) (n int, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, hit = c.lines[b]
	cb := c.fetch(b)
	if off >= len(cb.data) {
		return 0, hit
	}
	return copy(dst, cb.data[off:]), hit
}

// Write copies src into the cached copy of block b at off, marking the
// touched 64-byte lines dirty. The data is NOT visible in DRAM until
// Writeback. Returns bytes written and whether the block was already cached.
func (c *PrivateCache) Write(b BlockID, off int, src []byte) (n int, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, hit = c.lines[b]
	cb := c.fetch(b)
	if off >= len(cb.data) {
		return 0, hit
	}
	n = copy(cb.data[off:], src)
	cb.markLines(off, n)
	return n, hit
}

// Invalidate drops any cached copies of the given blocks, discarding dirty
// data. Hare calls this on open() so subsequent reads observe the latest
// data written back by other cores. It returns the number of blocks that
// were actually cached (for cost accounting).
func (c *PrivateCache) Invalidate(blocks []BlockID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for _, b := range blocks {
		if cb, ok := c.lines[b]; ok {
			c.linesInv += uint64(cb.numLines())
			delete(c.lines, b)
			dropped++
		}
	}
	c.invalidns += uint64(dropped)
	return dropped
}

// forEachCovered visits every resident block covered by the extents,
// driving the iteration from whichever side is smaller: block-by-block map
// lookups for a small file against a big cache, or one walk of the resident
// set range-checked against the extents for a big file against a sparse
// cache. Either way no per-block []BlockID slice is materialized. The
// extents may arrive in file order (unsorted, e.g. descending under LIFO
// allocation); the resident-walk branch sorts a scratch copy so its binary
// search is valid. fn may delete the visited entry.
func (c *PrivateCache) forEachCovered(exts []Extent, fn func(b BlockID, cb *cachedBlock)) {
	if ExtentBlocks(exts) <= len(c.lines) {
		for _, e := range exts {
			for b := e.Start; b < e.End(); b++ {
				if cb, ok := c.lines[b]; ok {
					fn(b, cb)
				}
			}
		}
		return
	}
	norm := NormalizeExtents(append([]Extent(nil), exts...))
	for b, cb := range c.lines {
		if extentsContain(norm, b) {
			fn(b, cb)
		}
	}
}

// InvalidateExtents drops cached copies of every block in the (normalized)
// extents, discarding dirty data. It returns the number of blocks dropped.
func (c *PrivateCache) InvalidateExtents(exts []Extent) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	c.forEachCovered(exts, func(b BlockID, cb *cachedBlock) {
		c.linesInv += uint64(cb.numLines())
		delete(c.lines, b)
		dropped++
	})
	c.invalidns += uint64(dropped)
	return dropped
}

// Writeback flushes dirty cached copies of the given blocks to DRAM in full,
// leaving clean copies in the cache. It returns the number of blocks flushed.
func (c *PrivateCache) Writeback(blocks []BlockID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushed := 0
	for _, b := range blocks {
		cb, ok := c.lines[b]
		if !ok || !cb.isDirty() {
			continue
		}
		c.dram.write(b, 0, cb.data)
		cb.clearDirty()
		c.linesWB += uint64(cb.numLines())
		flushed++
	}
	c.writebacks += uint64(flushed)
	return flushed
}

// WritebackExtents flushes dirty cached blocks covered by the (normalized)
// extents to DRAM, walking the resident set once instead of doing a map
// lookup per block. With dirtyLinesOnly set, only the 64-byte lines actually
// written since the last writeback move (and untouched lines of the same
// block are left alone in DRAM); otherwise each dirty block is flushed in
// full, matching Writeback. It returns the blocks flushed and the lines
// moved — the quantity the data-path cost model charges for.
func (c *PrivateCache) WritebackExtents(exts []Extent, dirtyLinesOnly bool) (blocks, lines int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.forEachCovered(exts, func(b BlockID, cb *cachedBlock) {
		if !cb.isDirty() {
			return
		}
		if dirtyLinesOnly {
			lines += c.flushDirtyLines(b, cb)
		} else {
			c.dram.write(b, 0, cb.data)
			lines += cb.numLines()
		}
		cb.clearDirty()
		blocks++
	})
	c.writebacks += uint64(blocks)
	c.linesWB += uint64(lines)
	return blocks, lines
}

// flushDirtyLines writes only the dirty lines of cb to DRAM and returns how
// many moved. The caller must hold c.mu and clear the dirty bits afterwards.
func (c *PrivateCache) flushDirtyLines(b BlockID, cb *cachedBlock) int {
	moved := 0
	nl := cb.numLines()
	for l := 0; l < nl; l++ {
		if cb.dirty[l/64]&(1<<(uint(l)%64)) == 0 {
			continue
		}
		off := l * LineSize
		end := off + LineSize
		if end > len(cb.data) {
			end = len(cb.data)
		}
		c.dram.write(b, off, cb.data[off:end])
		moved++
	}
	return moved
}

// NoteVersionSkip records that an open's invalidation was skipped because the
// server-side data version matched the client's cached copy, and returns the
// number of resident lines the skip preserved (for the lines-skipped
// economy counter). It charges nothing and moves nothing.
func (c *PrivateCache) NoteVersionSkip(exts []Extent) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	lines := 0
	c.forEachCovered(exts, func(b BlockID, cb *cachedBlock) {
		lines += cb.numLines()
	})
	c.linesSkipped += uint64(lines)
	return lines
}

// InvalidateAll drops the entire cache contents (used when a simulated
// process migrates or when resetting between experiments).
func (c *PrivateCache) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.lines)
	for _, cb := range c.lines {
		c.linesInv += uint64(cb.numLines())
	}
	c.lines = make(map[BlockID]*cachedBlock)
	c.invalidns += uint64(n)
	return n
}

// WritebackAll flushes every dirty block to DRAM.
func (c *PrivateCache) WritebackAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushed := 0
	for b, cb := range c.lines {
		if cb.isDirty() {
			c.dram.write(b, 0, cb.data)
			cb.clearDirty()
			c.linesWB += uint64(cb.numLines())
			flushed++
		}
	}
	c.writebacks += uint64(flushed)
	return flushed
}

// Dirty reports whether block b has dirty (not yet written back) data.
func (c *PrivateCache) Dirty(b BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cb, ok := c.lines[b]
	return ok && cb.isDirty()
}

// DirtyLines returns the number of dirty 64-byte lines in block b.
func (c *PrivateCache) DirtyLines(b BlockID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cb, ok := c.lines[b]
	if !ok {
		return 0
	}
	return cb.dirtyLineCount()
}

// Cached reports whether block b currently has a cached copy.
func (c *PrivateCache) Cached(b BlockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.lines[b]
	return ok
}

// CacheStats is a snapshot of a private cache's counters.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	Writebacks  uint64
	Invalidated uint64
	Resident    int
	// Line-granular data movement (DESIGN.md §8).
	LinesWB      uint64 // 64-byte lines flushed to DRAM
	LinesInv     uint64 // resident lines dropped by invalidation
	LinesSkipped uint64 // resident lines preserved by version-matched opens
}

// Stats returns a snapshot of the cache counters.
func (c *PrivateCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Writebacks:   c.writebacks,
		Invalidated:  c.invalidns,
		Resident:     len(c.lines),
		LinesWB:      c.linesWB,
		LinesInv:     c.linesInv,
		LinesSkipped: c.linesSkipped,
	}
}
