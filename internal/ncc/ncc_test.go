package ncc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/fsapi"
)

func TestDRAMReadWrite(t *testing.T) {
	d := NewDRAM(16, 128)
	if d.BlockSize() != 128 || d.NumBlocks() != 16 {
		t.Fatal("geometry wrong")
	}
	buf := make([]byte, 16)
	if n := d.ReadDirect(3, 0, buf); n != 16 {
		t.Fatalf("read %d bytes, want 16", n)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten DRAM should read as zeros")
		}
	}
	data := []byte("hello, shared dram")
	d.WriteDirect(3, 10, data)
	out := make([]byte, len(data))
	d.ReadDirect(3, 10, out)
	if !bytes.Equal(out, data) {
		t.Fatalf("read back %q, want %q", out, data)
	}
	d.ZeroBlock(3)
	d.ReadDirect(3, 10, out)
	for _, b := range out {
		if b != 0 {
			t.Fatal("zeroed block should read as zeros")
		}
	}
}

func TestDRAMOffsetsAndBounds(t *testing.T) {
	d := NewDRAM(2, 64)
	// Write that exceeds the block is truncated at the block boundary.
	big := make([]byte, 100)
	for i := range big {
		big[i] = 0xAB
	}
	if n := d.WriteDirect(0, 32, big); n != 32 {
		t.Fatalf("write across boundary wrote %d, want 32", n)
	}
	if n := d.WriteDirect(0, 64, big); n != 0 {
		t.Fatalf("write at block end wrote %d, want 0", n)
	}
}

func TestPrivateCacheStalenessWithoutInvalidation(t *testing.T) {
	d := NewDRAM(8, 64)
	c1 := NewPrivateCache(d)
	c2 := NewPrivateCache(d)

	// Core 2 reads the block first, caching zeros.
	buf := make([]byte, 4)
	c2.Read(0, 0, buf)

	// Core 1 writes and writes back.
	c1.Write(0, 0, []byte{1, 2, 3, 4})
	c1.Writeback([]BlockID{0})

	// Core 2 still sees its stale copy: the hardware is not coherent.
	c2.Read(0, 0, buf)
	if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Fatalf("expected stale zeros without invalidation, got %v", buf)
	}

	// After an explicit invalidation, core 2 observes the new data.
	c2.Invalidate([]BlockID{0})
	c2.Read(0, 0, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("expected fresh data after invalidation, got %v", buf)
	}
}

func TestPrivateCacheWritebackRequired(t *testing.T) {
	d := NewDRAM(8, 64)
	writer := NewPrivateCache(d)
	writer.Write(1, 0, []byte{9, 9})
	if !writer.Dirty(1) {
		t.Fatal("block should be dirty after write")
	}

	// DRAM must not see the write before writeback.
	buf := make([]byte, 2)
	d.ReadDirect(1, 0, buf)
	if buf[0] != 0 {
		t.Fatal("write-back cache leaked data to DRAM before writeback")
	}
	writer.Writeback([]BlockID{1})
	if writer.Dirty(1) {
		t.Fatal("block should be clean after writeback")
	}
	d.ReadDirect(1, 0, buf)
	if buf[0] != 9 {
		t.Fatal("writeback did not reach DRAM")
	}
}

func TestPrivateCacheInvalidateDiscardsDirty(t *testing.T) {
	d := NewDRAM(4, 64)
	c := NewPrivateCache(d)
	c.Write(0, 0, []byte{7})
	c.Invalidate([]BlockID{0})
	buf := make([]byte, 1)
	c.Read(0, 0, buf)
	if buf[0] != 0 {
		t.Fatal("invalidate should discard dirty data")
	}
}

func TestPrivateCacheStats(t *testing.T) {
	d := NewDRAM(4, 64)
	c := NewPrivateCache(d)
	buf := make([]byte, 8)
	if _, hit := c.Read(0, 0, buf); hit {
		t.Fatal("first read should miss")
	}
	if _, hit := c.Read(0, 0, buf); !hit {
		t.Fatal("second read should hit")
	}
	c.Write(1, 0, []byte{1})
	c.WritebackAll()
	c.InvalidateAll()
	st := c.Stats()
	if st.Misses < 2 || st.Hits < 1 || st.Writebacks != 1 || st.Resident != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestPartitionAllocFree(t *testing.T) {
	d := NewDRAM(10, 64)
	parts := PartitionDRAM(d, 3)
	if len(parts) != 3 {
		t.Fatal("wrong partition count")
	}
	total := 0
	for _, p := range parts {
		total += p.Total()
	}
	if total != 10 {
		t.Fatalf("partitions cover %d blocks, want 10", total)
	}

	p := parts[0]
	var got []BlockID
	for {
		b, err := p.Alloc()
		if err != nil {
			if !fsapi.IsErrno(err, fsapi.ENOSPC) {
				t.Fatalf("expected ENOSPC, got %v", err)
			}
			break
		}
		got = append(got, b)
	}
	if len(got) != p.Total() {
		t.Fatalf("allocated %d blocks, want %d", len(got), p.Total())
	}
	p.Free(got)
	if p.FreeCount() != p.Total() {
		t.Fatal("free did not restore the free list")
	}
}

func TestPartitionAllocZeroesBlock(t *testing.T) {
	d := NewDRAM(4, 64)
	parts := PartitionDRAM(d, 1)
	b, err := parts[0].Alloc()
	if err != nil {
		t.Fatal(err)
	}
	d.WriteDirect(b, 0, []byte{0xFF, 0xFF})
	parts[0].Free([]BlockID{b})
	b2, err := parts[0].Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		// The allocator is a stack, so the same block comes back.
		t.Fatalf("expected block %d, got %d", b, b2)
	}
	buf := make([]byte, 2)
	d.ReadDirect(b2, 0, buf)
	if buf[0] != 0 || buf[1] != 0 {
		t.Fatal("reallocated block not zeroed: data leaked between files")
	}
}

// Property: data written through a cache and written back always reads back
// identically via DRAM, for arbitrary offsets within a block.
func TestCacheWriteReadProperty(t *testing.T) {
	d := NewDRAM(4, 256)
	f := func(off uint8, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		o := int(off) % 192
		c := NewPrivateCache(d)
		c.Write(2, o, data)
		c.Writeback([]BlockID{2})
		out := make([]byte, len(data))
		d.ReadDirect(2, o, out)
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
