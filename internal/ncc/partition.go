package ncc

import (
	"fmt"
	"sync"

	"repro/internal/fsapi"
)

// Partition is the slice of the shared buffer cache owned by one file server.
// Each server allocates blocks for its files from its own partition's free
// list (the paper notes that stealing from other servers' partitions is
// possible but not implemented; this reproduction matches that).
type Partition struct {
	mu    sync.Mutex
	free  []BlockID
	total int
	// lo and hi bound the block range this partition owns: [lo, hi).
	lo, hi BlockID
	dram   *DRAM
}

// PartitionDRAM splits the DRAM's blocks evenly into n partitions.
func PartitionDRAM(d *DRAM, n int) []*Partition {
	if n <= 0 {
		panic(fmt.Sprintf("ncc: cannot partition DRAM into %d parts", n))
	}
	parts := make([]*Partition, n)
	per := d.NumBlocks() / n
	for i := 0; i < n; i++ {
		start := i * per
		end := start + per
		if i == n-1 {
			end = d.NumBlocks()
		}
		p := &Partition{dram: d, total: end - start, lo: BlockID(start), hi: BlockID(end)}
		for b := start; b < end; b++ {
			p.free = append(p.free, BlockID(b))
		}
		parts[i] = p
	}
	return parts
}

// Alloc removes and returns one free block, zeroed. It returns ENOSPC when
// the partition is exhausted.
func (p *Partition) Alloc() (BlockID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return InvalidBlock, fsapi.ENOSPC
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.dram.ZeroBlock(b)
	return b, nil
}

// Free returns blocks to the partition's free list.
func (p *Partition) Free(blocks []BlockID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, blocks...)
}

// FreeCount returns the number of free blocks remaining.
func (p *Partition) FreeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Total returns the total number of blocks in the partition.
func (p *Partition) Total() int { return p.total }

// Range returns the half-open block range [lo, hi) the partition owns.
func (p *Partition) Range() (lo, hi BlockID) { return p.lo, p.hi }

// Reclaim rebuilds the free list after crash recovery: every block in the
// partition's range that is not in use becomes free again, without zeroing
// anything (recovered files still own their contents). The in-use set is
// reconstructed by the recovering server from its replayed inode table.
func (p *Partition) Reclaim(inUse map[BlockID]bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = p.free[:0]
	for b := p.lo; b < p.hi; b++ {
		if !inUse[b] {
			p.free = append(p.free, b)
		}
	}
}
