// Package ncc models the non-cache-coherent memory system that Hare targets:
// a shared DRAM holding the buffer cache, and per-core private write-back
// caches that are NOT kept coherent by hardware.
//
// Reads through a private cache may return stale data unless software has
// explicitly invalidated the cached copies; writes are not visible to other
// cores until software explicitly writes them back to DRAM. Hare's client
// library builds close-to-open consistency on top of these two primitives
// (invalidate on open, write back on close/fsync).
package ncc

import (
	"fmt"
	"sync"
)

// BlockID names one block of the shared buffer cache. Block 0 is a valid
// block; InvalidBlock is used as a sentinel.
type BlockID uint64

// InvalidBlock is the sentinel "no block" value.
const InvalidBlock BlockID = ^BlockID(0)

// DRAM is the shared memory visible to all cores. It is divided into
// fixed-size blocks; Hare's file servers hand out blocks to files and client
// libraries read and write them directly (through their private caches).
type DRAM struct {
	blockSize int
	blocks    []dramBlock
}

type dramBlock struct {
	mu   sync.Mutex
	data []byte
}

// NewDRAM creates a shared memory with numBlocks blocks of blockSize bytes.
func NewDRAM(numBlocks int, blockSize int) *DRAM {
	if numBlocks <= 0 || blockSize <= 0 {
		panic(fmt.Sprintf("ncc: invalid DRAM geometry %d x %d", numBlocks, blockSize))
	}
	return &DRAM{
		blockSize: blockSize,
		blocks:    make([]dramBlock, numBlocks),
	}
}

// BlockSize returns the size of each block in bytes.
func (d *DRAM) BlockSize() int { return d.blockSize }

// NumBlocks returns the number of blocks in the shared memory.
func (d *DRAM) NumBlocks() int { return len(d.blocks) }

// validate panics on out-of-range block ids: this indicates a file system
// bug, equivalent to a wild pointer on the real hardware.
func (d *DRAM) validate(b BlockID) {
	if int(b) >= len(d.blocks) {
		panic(fmt.Sprintf("ncc: access to invalid block %d (of %d)", b, len(d.blocks)))
	}
}

// read copies block contents into dst starting at off; returns bytes copied.
func (d *DRAM) read(b BlockID, off int, dst []byte) int {
	d.validate(b)
	blk := &d.blocks[b]
	blk.mu.Lock()
	defer blk.mu.Unlock()
	if blk.data == nil || off >= len(blk.data) {
		// Unwritten DRAM reads as zeros.
		n := d.blockSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if n < 0 {
			n = 0
		}
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return n
	}
	return copy(dst, blk.data[off:])
}

// write copies src into the block at off; returns bytes copied.
func (d *DRAM) write(b BlockID, off int, src []byte) int {
	d.validate(b)
	blk := &d.blocks[b]
	blk.mu.Lock()
	defer blk.mu.Unlock()
	if blk.data == nil {
		blk.data = make([]byte, d.blockSize)
	}
	if off >= d.blockSize {
		return 0
	}
	return copy(blk.data[off:], src)
}

// zero clears a block's contents (used when a freed block is reallocated).
func (d *DRAM) zero(b BlockID) {
	d.validate(b)
	blk := &d.blocks[b]
	blk.mu.Lock()
	defer blk.mu.Unlock()
	blk.data = nil
}

// ReadDirect reads directly from DRAM, bypassing any private cache. It is
// used by tests and by the unfs baseline's single server.
func (d *DRAM) ReadDirect(b BlockID, off int, dst []byte) int { return d.read(b, off, dst) }

// WriteDirect writes directly to DRAM, bypassing any private cache.
func (d *DRAM) WriteDirect(b BlockID, off int, src []byte) int { return d.write(b, off, src) }

// ZeroBlock clears the block; file servers call this when a block moves from
// one file to another so freed data never leaks.
func (d *DRAM) ZeroBlock(b BlockID) { d.zero(b) }
