package ncc

import "sort"

// Extent is a run of Count consecutive buffer-cache blocks starting at Start.
// File block maps and wire messages use extents so their size scales with the
// file's fragmentation rather than with its length: a freshly created file
// whose blocks came off a partition free list is typically one or two runs no
// matter how many blocks it holds.
type Extent struct {
	Start BlockID
	Count uint64
}

// End returns the first block after the extent (half-open [Start, End)).
func (e Extent) End() BlockID { return e.Start + BlockID(e.Count) }

// ExtentList is an ordered block map held as extents. Appending preserves the
// file's block order (extents may be non-monotonic in block-id space when the
// allocator's free list is fragmented); At gives O(log runs) random access
// via a cumulative index.
type ExtentList struct {
	runs []Extent
	// cum[i] is the total number of blocks in runs[:i+1].
	cum []uint64
}

// Reset empties the list, keeping capacity.
func (l *ExtentList) Reset() {
	l.runs = l.runs[:0]
	l.cum = l.cum[:0]
}

// Len returns the total number of blocks mapped.
func (l *ExtentList) Len() int {
	if len(l.cum) == 0 {
		return 0
	}
	return int(l.cum[len(l.cum)-1])
}

// NumRuns returns the number of extents.
func (l *ExtentList) NumRuns() int { return len(l.runs) }

// Runs returns the underlying extents; callers must not modify them.
func (l *ExtentList) Runs() []Extent { return l.runs }

// Append adds one block to the end of the map, extending the last run when
// the block is its direct successor.
func (l *ExtentList) Append(b BlockID) {
	if n := len(l.runs); n > 0 && l.runs[n-1].End() == b {
		l.runs[n-1].Count++
		l.cum[n-1]++
		return
	}
	l.AppendRun(Extent{Start: b, Count: 1})
}

// AppendRun adds a whole extent to the end of the map.
func (l *ExtentList) AppendRun(e Extent) {
	if e.Count == 0 {
		return
	}
	var total uint64
	if len(l.cum) > 0 {
		total = l.cum[len(l.cum)-1]
	}
	if n := len(l.runs); n > 0 && l.runs[n-1].End() == e.Start {
		l.runs[n-1].Count += e.Count
		l.cum[n-1] += e.Count
		return
	}
	l.runs = append(l.runs, e)
	l.cum = append(l.cum, total+e.Count)
}

// At returns the i-th block of the map. It panics on out-of-range indices,
// mirroring slice indexing (an out-of-range file block index is a client
// bug).
func (l *ExtentList) At(i int) BlockID {
	idx := uint64(i)
	r := sort.Search(len(l.cum), func(j int) bool { return l.cum[j] > idx })
	if r == len(l.runs) {
		panic("ncc: extent list index out of range")
	}
	before := uint64(0)
	if r > 0 {
		before = l.cum[r-1]
	}
	return l.runs[r].Start + BlockID(idx-before)
}

// TailRuns returns the extents covering blocks [from, Len) — the tail a
// caller just learned about when the map grew. The returned slice is fresh.
func (l *ExtentList) TailRuns(from int) []Extent {
	if from >= l.Len() {
		return nil
	}
	idx := uint64(from)
	r := sort.Search(len(l.cum), func(j int) bool { return l.cum[j] > idx })
	before := uint64(0)
	if r > 0 {
		before = l.cum[r-1]
	}
	first := l.runs[r]
	skip := idx - before
	out := make([]Extent, 0, len(l.runs)-r)
	out = append(out, Extent{Start: first.Start + BlockID(skip), Count: first.Count - skip})
	out = append(out, l.runs[r+1:]...)
	return out
}

// NormalizeExtents sorts extents by start block and merges overlapping and
// adjacent runs into a canonical disjoint ascending form. Overlaps arise from
// repeated writes to the same file region; normalizing before writeback means
// no block is visited — or charged — twice. The input slice is reused.
func NormalizeExtents(exts []Extent) []Extent {
	if len(exts) <= 1 {
		return exts
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].Start < exts[j].Start })
	out := exts[:1]
	for _, e := range exts[1:] {
		last := &out[len(out)-1]
		if e.Start <= last.End() {
			if e.End() > last.End() {
				last.Count = uint64(e.End() - last.Start)
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// extentsContain reports whether b falls inside the normalized (disjoint,
// ascending) extents.
func extentsContain(exts []Extent, b BlockID) bool {
	i := sort.Search(len(exts), func(j int) bool { return exts[j].End() > b })
	return i < len(exts) && exts[i].Start <= b
}

// ExtentBlocks returns the total block count of the extents.
func ExtentBlocks(exts []Extent) int {
	total := 0
	for _, e := range exts {
		total += int(e.Count)
	}
	return total
}
