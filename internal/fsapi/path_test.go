package fsapi

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"/", nil},
		{"", nil},
		{"/a/b/c", []string{"a", "b", "c"}},
		{"a/b", []string{"a", "b"}},
		{"//a///b/", []string{"a", "b"}},
		{"/a/./b", []string{"a", "b"}},
		{".", nil},
	}
	for _, c := range cases {
		got := SplitPath(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestIsAbs(t *testing.T) {
	if !IsAbs("/a") {
		t.Error("IsAbs(/a) = false")
	}
	if IsAbs("a/b") {
		t.Error("IsAbs(a/b) = true")
	}
	if IsAbs("") {
		t.Error("IsAbs(\"\") = true")
	}
}

func TestJoin(t *testing.T) {
	cases := []struct {
		elems []string
		want  string
	}{
		{[]string{"/a", "b"}, "/a/b"},
		{[]string{"a", "b", "c"}, "a/b/c"},
		{[]string{"/", "x"}, "/x"},
		{[]string{"/a/", "/b/"}, "/a/b"},
	}
	for _, c := range cases {
		if got := Join(c.elems...); got != c.want {
			t.Errorf("Join(%v) = %q, want %q", c.elems, got, c.want)
		}
	}
}

func TestResolveDots(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a/b/../c", "/a/c"},
		{"/a/../../b", "/b"},
		{"/..", "/"},
		{"/a/./b/.", "/a/b"},
		{"/", "/"},
	}
	for _, c := range cases {
		if got := ResolveDots(c.in); got != c.want {
			t.Errorf("ResolveDots(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitDirBase(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", "."},
		{"a/b", "a", "b"},
		{"name", ".", "name"},
	}
	for _, c := range cases {
		dir, base := SplitDirBase(c.in)
		if dir != c.dir || base != c.base {
			t.Errorf("SplitDirBase(%q) = (%q, %q), want (%q, %q)", c.in, dir, base, c.dir, c.base)
		}
	}
}

func TestValidName(t *testing.T) {
	if ValidName("") || ValidName(".") || ValidName("..") || ValidName("a/b") {
		t.Error("invalid names accepted")
	}
	if !ValidName("hello.txt") {
		t.Error("valid name rejected")
	}
	if ValidName(strings.Repeat("x", NameMax+1)) {
		t.Error("overlong name accepted")
	}
	if !ValidName(strings.Repeat("x", NameMax)) {
		t.Error("max-length name rejected")
	}
}

// Property: ResolveDots output is always absolute and contains no dot
// components.
func TestResolveDotsProperty(t *testing.T) {
	f := func(parts []string) bool {
		path := "/" + strings.Join(parts, "/")
		out := ResolveDots(path)
		if !IsAbs(out) {
			return false
		}
		for _, c := range SplitPath(out) {
			if c == "." || c == ".." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Join of a dir and base from SplitDirBase round-trips for clean
// absolute paths.
func TestSplitJoinRoundTrip(t *testing.T) {
	paths := []string{"/a", "/a/b", "/x/y/z", "/dir/file.txt"}
	for _, p := range paths {
		dir, base := SplitDirBase(p)
		if got := Join(dir, base); got != p {
			t.Errorf("Join(SplitDirBase(%q)) = %q", p, got)
		}
	}
}

func TestErrnoError(t *testing.T) {
	if ENOENT.Error() == "" || Errno(9999).Error() == "" {
		t.Error("Errno.Error returned empty string")
	}
	if !IsErrno(ENOENT, ENOENT) {
		t.Error("IsErrno(ENOENT, ENOENT) = false")
	}
	if IsErrno(nil, ENOENT) || IsErrno(EEXIST, ENOENT) {
		t.Error("IsErrno matched wrong error")
	}
}

func TestModeOwnerBits(t *testing.T) {
	if Mode644.OwnerBits() != ModeRead|ModeWrite {
		t.Errorf("Mode644 owner bits = %o", Mode644.OwnerBits())
	}
	if Mode755.OwnerBits() != ModeAll {
		t.Errorf("Mode755 owner bits = %o", Mode755.OwnerBits())
	}
}

func TestFileTypeString(t *testing.T) {
	for ft, want := range map[FileType]string{TypeRegular: "file", TypeDir: "dir", TypePipe: "pipe", FileType(99): "unknown"} {
		if ft.String() != want {
			t.Errorf("FileType(%d).String() = %q, want %q", ft, ft.String(), want)
		}
	}
}
