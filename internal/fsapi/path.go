package fsapi

import "strings"

// SplitPath splits a slash-separated path into its components, dropping empty
// components and single dots. It does not resolve "..": callers that need it
// use ResolveDots first. The returned slice is never nil.
func SplitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p == "" || p == "." {
			continue
		}
		out = append(out, p)
	}
	return out
}

// IsAbs reports whether the path is absolute.
func IsAbs(path string) bool {
	return strings.HasPrefix(path, "/")
}

// Join joins path elements with slashes, collapsing duplicate separators.
func Join(elems ...string) string {
	joined := strings.Join(elems, "/")
	comps := SplitPath(joined)
	if IsAbs(joined) {
		return "/" + strings.Join(comps, "/")
	}
	return strings.Join(comps, "/")
}

// ResolveDots removes "." and resolves ".." components lexically against an
// absolute path. The input must be absolute; the output is absolute.
func ResolveDots(path string) string {
	comps := SplitPath(path)
	out := make([]string, 0, len(comps))
	for _, c := range comps {
		if c == ".." {
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
			continue
		}
		out = append(out, c)
	}
	return "/" + strings.Join(out, "/")
}

// SplitDirBase splits a path into its directory portion and final component.
// SplitDirBase("/a/b/c") returns ("/a/b", "c"); SplitDirBase("/a") returns
// ("/", "a"); SplitDirBase("/") returns ("/", ".").
func SplitDirBase(path string) (dir, base string) {
	comps := SplitPath(path)
	if len(comps) == 0 {
		return "/", "."
	}
	base = comps[len(comps)-1]
	prefix := comps[:len(comps)-1]
	if IsAbs(path) {
		return "/" + strings.Join(prefix, "/"), base
	}
	if len(prefix) == 0 {
		return ".", base
	}
	return strings.Join(prefix, "/"), base
}

// ValidName reports whether name is a legal directory entry name: non-empty,
// no slash, not "." or "..", and at most NameMax bytes.
func ValidName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	if len(name) > NameMax {
		return false
	}
	return !strings.Contains(name, "/")
}

// NameMax is the maximum length of a single path component.
const NameMax = 255
