// Package fsapi defines the POSIX-like file system interface shared by the
// Hare file system and the baseline file systems (ramfs, unfs).
//
// Benchmarks and example applications are written against this interface so
// that the same workload can be replayed on any backend.
package fsapi

import "fmt"

// Errno is a POSIX-style error number. The zero value (OK) means no error,
// but functions return nil rather than OK on success.
type Errno int

// Errno values used throughout the file system implementations.
const (
	OK Errno = iota
	EPERM
	ENOENT
	EIO
	EBADF
	EAGAIN
	ENOMEM
	EACCES
	EBUSY
	EEXIST
	EXDEV
	ENOTDIR
	EISDIR
	EINVAL
	EMFILE
	ENOSPC
	ESPIPE
	EROFS
	EPIPE
	ENAMETOOLONG
	ENOTEMPTY
	ENOSYS
	ESTALE
	ECANCELED
	// EEPOCH is Hare-specific: the request was routed under a placement-map
	// epoch the server has moved past (or not yet reached). The client
	// refreshes its cached routing table and retries (DESIGN.md §9).
	EEPOCH
)

var errnoNames = map[Errno]string{
	OK:           "OK",
	EPERM:        "EPERM: operation not permitted",
	ENOENT:       "ENOENT: no such file or directory",
	EIO:          "EIO: input/output error",
	EBADF:        "EBADF: bad file descriptor",
	EAGAIN:       "EAGAIN: resource temporarily unavailable",
	ENOMEM:       "ENOMEM: cannot allocate memory",
	EACCES:       "EACCES: permission denied",
	EBUSY:        "EBUSY: device or resource busy",
	EEXIST:       "EEXIST: file exists",
	EXDEV:        "EXDEV: invalid cross-device link",
	ENOTDIR:      "ENOTDIR: not a directory",
	EISDIR:       "EISDIR: is a directory",
	EINVAL:       "EINVAL: invalid argument",
	EMFILE:       "EMFILE: too many open files",
	ENOSPC:       "ENOSPC: no space left on device",
	ESPIPE:       "ESPIPE: illegal seek",
	EROFS:        "EROFS: read-only file system",
	EPIPE:        "EPIPE: broken pipe",
	ENAMETOOLONG: "ENAMETOOLONG: file name too long",
	ENOTEMPTY:    "ENOTEMPTY: directory not empty",
	ENOSYS:       "ENOSYS: function not implemented",
	ESTALE:       "ESTALE: stale file handle",
	ECANCELED:    "ECANCELED: operation canceled",
	EEPOCH:       "EEPOCH: stale placement epoch",
}

// Error implements the error interface.
func (e Errno) Error() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// IsErrno reports whether err is the given errno value.
func IsErrno(err error, want Errno) bool {
	e, ok := err.(Errno)
	return ok && e == want
}
