package fsapi

// Open flags, modelled after POSIX. Only the flags the Hare prototype (and
// the workloads in this repository) use are defined.
const (
	ORdOnly  = 0x0
	OWrOnly  = 0x1
	ORdWr    = 0x2
	OCreate  = 0x40
	OExcl    = 0x80
	OTrunc   = 0x200
	OAppend  = 0x400
	ODir     = 0x10000
	OAccMode = 0x3
)

// Whence values for Seek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// FileType describes the type of an inode.
type FileType uint8

// Inode types.
const (
	TypeRegular FileType = iota + 1
	TypeDir
	TypePipe
)

// String returns a short human-readable name for the file type.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypePipe:
		return "pipe"
	default:
		return "unknown"
	}
}

// FD is a per-process file descriptor number.
type FD int

// Mode captures permission bits. The prototype performs standard POSIX
// permission checks on the owner bits only (all processes share one uid).
type Mode uint16

// Common mode constants.
const (
	ModeRead  Mode = 0o4
	ModeWrite Mode = 0o2
	ModeExec  Mode = 0o1
	ModeAll   Mode = 0o7
	Mode644   Mode = 0o644
	Mode755   Mode = 0o755
)

// OwnerBits extracts the owner permission bits of the mode.
func (m Mode) OwnerBits() Mode { return (m >> 6) & ModeAll }

// Stat describes an inode, as returned by Stat/Fstat.
type Stat struct {
	Ino   uint64
	Type  FileType
	Size  int64
	Nlink int
	Mode  Mode
	// Server is the id of the file server storing the inode. It is
	// informational (used by tests and tooling); baselines report 0.
	Server int
}

// Dirent is one directory entry as returned by ReadDir.
type Dirent struct {
	Name string
	Ino  uint64
	Type FileType
}

// MkdirOpt controls directory creation.
type MkdirOpt struct {
	// Distributed requests that the directory's entries be sharded across
	// all file servers (Hare's directory distribution). Baselines ignore it.
	Distributed bool
	Mode        Mode
}

// Client is the per-process POSIX-like interface offered by every file system
// backend in this repository. A Client is not safe for concurrent use by
// multiple goroutines; each simulated process owns its own Client.
type Client interface {
	// Open opens path with the given flags, creating it with mode if
	// OCreate is set. It returns a process-local file descriptor.
	Open(path string, flags int, mode Mode) (FD, error)
	// Close closes a file descriptor.
	Close(fd FD) error
	// Read reads up to len(p) bytes from the current offset.
	Read(fd FD, p []byte) (int, error)
	// Write writes len(p) bytes at the current offset.
	Write(fd FD, p []byte) (int, error)
	// Pread reads at an explicit offset without moving the fd offset.
	Pread(fd FD, p []byte, off int64) (int, error)
	// Pwrite writes at an explicit offset without moving the fd offset.
	Pwrite(fd FD, p []byte, off int64) (int, error)
	// Seek repositions the fd offset.
	Seek(fd FD, off int64, whence int) (int64, error)
	// Fsync forces dirty data for fd back to shared memory (or "disk").
	Fsync(fd FD) error
	// Ftruncate truncates the open file to the given size.
	Ftruncate(fd FD, size int64) error
	// Unlink removes a directory entry (and the file once unreferenced).
	Unlink(path string) error
	// Mkdir creates a directory.
	Mkdir(path string, opt MkdirOpt) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Rename atomically renames oldPath to newPath.
	Rename(oldPath, newPath string) error
	// ReadDir lists the entries of a directory.
	ReadDir(path string) ([]Dirent, error)
	// Stat returns metadata for a path.
	Stat(path string) (Stat, error)
	// Fstat returns metadata for an open descriptor.
	Fstat(fd FD) (Stat, error)
	// Pipe creates a pipe and returns the read and write descriptors.
	Pipe() (FD, FD, error)
	// Dup duplicates a descriptor within the process.
	Dup(fd FD) (FD, error)
	// Chdir changes the process working directory.
	Chdir(path string) error
	// Getcwd returns the process working directory.
	Getcwd() string
}

// Forker is implemented by backends whose descriptors can be shared across
// processes (Hare and ramfs). CloneForFork duplicates the descriptor table
// for a child process, sharing offsets per POSIX fork semantics.
type Forker interface {
	// CloneForFork returns a new Client for the child process running on
	// the given core, with all descriptors shared with the parent.
	CloneForFork(childCore int) (Client, error)
}
