// Package stats provides the small set of summary statistics used by the
// benchmark harness (means, medians, geometric means of speedups/ratios).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Min returns the smallest value in xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Economy aggregates the message-economy counters of one deployment or one
// timed region: messages on the wire, payload bytes, client request
// messages, sub-operations that traveled inside batch envelopes, the total
// virtual queueing delay requests spent waiting for busy servers, and the
// data-path line counters (64-byte lines written back to DRAM, lines dropped
// by open-time invalidation, and lines a version-matched open preserved).
// The benchmark harness reports these alongside runtimes so optimizations
// that trade messages or data movement for latency are quantified, not
// asserted.
type Economy struct {
	Msgs        uint64 // envelopes delivered (requests, replies, callbacks)
	Bytes       uint64 // payload bytes on the wire
	ClientRPCs  uint64 // request messages sent by client libraries
	BatchedOps  uint64 // sub-operations carried inside batch envelopes
	QueueCycles uint64 // total virtual cycles requests queued at busy servers
	WbLines     uint64 // 64-byte lines written back to the shared DRAM
	InvLines    uint64 // resident lines dropped by open-time invalidation
	SkipLines   uint64 // resident lines preserved by version-matched opens
	MigEntries  uint64 // directory entries handed off by shard migrations (DESIGN.md §9)
	ReplMsgs    uint64 // replication messages: shipped batches + follower acks (DESIGN.md §12)
	ReplBytes   uint64 // replication payload bytes (ships + acks)
}

// Sub returns the counters accumulated since the base snapshot.
func (e Economy) Sub(base Economy) Economy {
	return Economy{
		Msgs:        e.Msgs - base.Msgs,
		Bytes:       e.Bytes - base.Bytes,
		ClientRPCs:  e.ClientRPCs - base.ClientRPCs,
		BatchedOps:  e.BatchedOps - base.BatchedOps,
		QueueCycles: e.QueueCycles - base.QueueCycles,
		WbLines:     e.WbLines - base.WbLines,
		InvLines:    e.InvLines - base.InvLines,
		SkipLines:   e.SkipLines - base.SkipLines,
		MigEntries:  e.MigEntries - base.MigEntries,
		ReplMsgs:    e.ReplMsgs - base.ReplMsgs,
		ReplBytes:   e.ReplBytes - base.ReplBytes,
	}
}

// Add returns the element-wise sum of two counter sets.
func (e Economy) Add(o Economy) Economy {
	return Economy{
		Msgs:        e.Msgs + o.Msgs,
		Bytes:       e.Bytes + o.Bytes,
		ClientRPCs:  e.ClientRPCs + o.ClientRPCs,
		BatchedOps:  e.BatchedOps + o.BatchedOps,
		QueueCycles: e.QueueCycles + o.QueueCycles,
		WbLines:     e.WbLines + o.WbLines,
		InvLines:    e.InvLines + o.InvLines,
		SkipLines:   e.SkipLines + o.SkipLines,
		MigEntries:  e.MigEntries + o.MigEntries,
		ReplMsgs:    e.ReplMsgs + o.ReplMsgs,
		ReplBytes:   e.ReplBytes + o.ReplBytes,
	}
}

// DataLines returns the total 64-byte lines the data path actually moved
// (written back plus invalidated) — the quantity the zero-waste data path
// minimizes (DESIGN.md §8).
func (e Economy) DataLines() uint64 { return e.WbLines + e.InvLines }

// PerOp divides a counter by an operation count (0 when ops is 0).
func PerOp(counter uint64, ops int) float64 {
	if ops <= 0 {
		return 0
	}
	return float64(counter) / float64(ops)
}

// Imbalance returns the max/mean ratio of per-server loads: 1.0 is a
// perfectly balanced fleet, N is everything on one of N servers. Zero-load
// fleets report 0. The benchmark tables surface it so the ring-vs-modulo
// balance difference is measurable rather than anecdotal.
func Imbalance(loads []uint64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var total, max uint64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(loads))
	return float64(max) / mean
}

// Summary bundles the four summary statistics reported in the paper's
// technique-importance table (Figure 9).
type Summary struct {
	Min    float64
	Avg    float64
	Median float64
	Max    float64
}

// Summarize computes the Figure 9 style summary of xs in a single pass
// (plus one sort for the median).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	var sum float64
	for _, x := range cp {
		sum += x
	}
	n := len(cp)
	med := cp[n/2]
	if n%2 == 0 {
		med = (cp[n/2-1] + cp[n/2]) / 2
	}
	return Summary{
		Min:    cp[0],
		Avg:    sum / float64(n),
		Median: med,
		Max:    cp[n-1],
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank interpolation on a sorted copy. Empty input reports 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	// Linear interpolation between closest ranks.
	rank := p / 100 * float64(len(cp)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[lo] + frac*(cp[lo+1]-cp[lo])
}
