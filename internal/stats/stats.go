// Package stats provides the small set of summary statistics used by the
// benchmark harness (means, medians, geometric means of speedups/ratios).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Min returns the smallest value in xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Summary bundles the four summary statistics reported in the paper's
// technique-importance table (Figure 9).
type Summary struct {
	Min    float64
	Avg    float64
	Median float64
	Max    float64
}

// Summarize computes the Figure 9 style summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{Min: Min(xs), Avg: Mean(xs), Median: Median(xs), Max: Max(xs)}
}
