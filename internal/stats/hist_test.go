package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist should report zeros")
	}
	q := h.Quantiles()
	if q.N != 0 || q.P99 != 0 {
		t.Fatalf("empty quantiles: %+v", q)
	}
}

func TestHistSingleValue(t *testing.T) {
	var h Hist
	h.Record(1000)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 1000 {
			t.Fatalf("p%.0f = %d, want 1000 (clamped to max)", p, got)
		}
	}
	if h.Mean() != 1000 {
		t.Fatalf("mean = %f", h.Mean())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	for i := uint64(1); i <= 100; i++ {
		all.Record(i * 7)
		if i%2 == 0 {
			a.Record(i * 7)
		} else {
			b.Record(i * 7)
		}
	}
	a.Merge(&b)
	if a != all {
		t.Fatalf("merge mismatch:\n a=%+v\nall=%+v", a, all)
	}
}

// TestHistPercentileVsExact property-tests the histogram estimate against
// the exact percentile on random data: the estimate must land within one
// bucket (a factor of two) of the exact value, and never below it by more
// than one bucket either.
func TestHistPercentileVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5000)
		xs := make([]uint64, n)
		var h Hist
		// Mix of scales so buckets across the range are exercised.
		for i := range xs {
			v := uint64(rng.Int63n(1 << uint(1+rng.Intn(40))))
			xs[i] = v
			h.Record(v)
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, p := range []float64{1, 25, 50, 90, 95, 99, 99.9, 100} {
			// Exact nearest-rank percentile.
			rank := int(p / 100 * float64(n))
			if float64(rank) < p/100*float64(n) {
				rank++
			}
			if rank == 0 {
				rank = 1
			}
			exact := xs[rank-1]
			est := h.Percentile(p)
			// The estimate is the upper edge of the bucket holding the
			// exact sample (clamped to max): est >= exact always, and
			// est < 2*exact + 1 (one bucket width).
			if est < exact {
				t.Fatalf("trial %d p%v: estimate %d below exact %d", trial, p, est, exact)
			}
			if exact > 0 && est > 2*exact {
				t.Fatalf("trial %d p%v: estimate %d more than one bucket above exact %d", trial, p, est, exact)
			}
			if exact == 0 && est > h.MaxV {
				t.Fatalf("trial %d p%v: estimate %d above max", trial, p, est)
			}
		}
	}
}

func TestPercentileExact(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty: %f", got)
	}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0: %f", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100: %f", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("p50: %f", got)
	}
	// Unsorted input must not be mutated.
	ys := []float64{3, 1, 2}
	_ = Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarizeOnePass(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs)
	if s.Min != 1 || s.Max != 5 || s.Avg != 3 || s.Median != 3 {
		t.Fatalf("summary: %+v", s)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median: %+v", even)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary: %+v", z)
	}
}
