package stats

import "math/bits"

// HistBuckets is the number of buckets in a Hist: one per possible bit
// length of a uint64 value, plus bucket 0 for the value 0.
const HistBuckets = 65

// Hist is a fixed-size power-of-two latency histogram in the spirit of HDR
// histograms: value v lands in bucket bits.Len64(v), so bucket b (b ≥ 1)
// covers [2^(b-1), 2^b). With 65 buckets it can absorb any uint64 cycle
// count in O(1) with no allocation, and a percentile estimate is never off
// by more than one bucket width (a factor of two in value). That resolution
// is deliberate: virtual-time latencies in this simulator span six orders of
// magnitude across techniques, and the harness cares about tail *shape*
// (p50 vs p99 vs p999), not single-cycle precision.
type Hist struct {
	Counts [HistBuckets]uint64
	N      uint64 // total samples
	Sum    uint64 // sum of raw values (for means)
	MaxV   uint64 // largest recorded value (exact)
}

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	h.Counts[bits.Len64(v)]++
	h.N++
	h.Sum += v
	if v > h.MaxV {
		h.MaxV = v
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.N += o.N
	h.Sum += o.Sum
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Percentile returns an upper-bound estimate of the p-th percentile
// (0 ≤ p ≤ 100): the inclusive upper edge of the bucket holding the
// nearest-rank sample, clamped to the exact maximum. Empty reports 0.
func (h *Hist) Percentile(p float64) uint64 {
	if h.N == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Nearest-rank: the k-th smallest sample with k = ceil(p/100 * N),
	// at least 1.
	rank := uint64(p / 100 * float64(h.N))
	if float64(rank) < p/100*float64(h.N) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b, c := range h.Counts {
		seen += c
		if seen >= rank {
			hi := bucketUpper(b)
			if hi > h.MaxV {
				hi = h.MaxV
			}
			return hi
		}
	}
	return h.MaxV
}

// bucketUpper returns the largest value that lands in bucket b.
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// Quantiles bundles the tail summary the harnesses report.
type Quantiles struct {
	N                   uint64
	Mean                float64
	P50, P95, P99, P999 uint64
	Max                 uint64
}

// Quantiles returns the standard p50/p95/p99/p999 summary of h.
func (h *Hist) Quantiles() Quantiles {
	return Quantiles{
		N:    h.N,
		Mean: h.Mean(),
		P50:  h.Percentile(50),
		P95:  h.Percentile(95),
		P99:  h.Percentile(99),
		P999: h.Percentile(99.9),
		Max:  h.MaxV,
	}
}
