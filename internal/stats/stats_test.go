package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if !almost(Mean(xs), 2.5) {
		t.Errorf("mean = %f", Mean(xs))
	}
	if !almost(Median(xs), 2.5) {
		t.Errorf("median = %f", Median(xs))
	}
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Errorf("odd median = %f", Median([]float64{5, 1, 3}))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("min/max = %f/%f", Min(xs), Max(xs))
	}
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Errorf("geomean = %f", GeoMean([]float64{1, 4}))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Error("geomean of non-positive values should be 0")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.9, 1.5, 2.0, 5.5})
	if !almost(s.Min, 0.9) || !almost(s.Max, 5.5) || !almost(s.Median, 1.75) || !almost(s.Avg, 2.475) {
		t.Errorf("summary %+v", s)
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max for any non-empty
// input (values are folded into a range that cannot overflow the sum).
func TestOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Avg+1e-9 && s.Avg <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEconomyArithmetic(t *testing.T) {
	a := Economy{Msgs: 100, Bytes: 5000, ClientRPCs: 40, BatchedOps: 10, QueueCycles: 900}
	b := Economy{Msgs: 60, Bytes: 2000, ClientRPCs: 25, BatchedOps: 4, QueueCycles: 400}
	d := a.Sub(b)
	if d.Msgs != 40 || d.Bytes != 3000 || d.ClientRPCs != 15 || d.BatchedOps != 6 || d.QueueCycles != 500 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add did not invert Sub: %+v", s)
	}
	if got := PerOp(d.Msgs, 20); got != 2 {
		t.Fatalf("PerOp = %f", got)
	}
	if PerOp(d.Msgs, 0) != 0 {
		t.Fatal("PerOp with zero ops should be 0")
	}
}
