package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestEmitterNamespacing(t *testing.T) {
	seen := make(map[uint64]bool)
	emitters := []*Emitter{
		ClientEmitter(0),
		ClientEmitter(1),
		ServerEmitter(0, 0),
		ServerEmitter(0, 1), // same server, post-crash incarnation
		ServerEmitter(1, 0),
	}
	for _, e := range emitters {
		for i := 0; i < 1000; i++ {
			id := e.Next()
			if seen[id] {
				t.Fatalf("duplicate span ID %#x", id)
			}
			seen[id] = true
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{})
	if tr.Spans() != nil || tr.Sample() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should be empty")
	}
	if tr.OpQuantiles() != nil || tr.OpNames() != nil {
		t.Fatal("nil tracer quantiles should be nil")
	}
	tr.Reset()
	if New(Config{}) != nil {
		t.Fatal("disabled config should yield nil tracer")
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(Config{Sample: 1, Ring: 4})
	for i := 0; i < 10; i++ {
		tr.Record(Span{ID: uint64(i + 1), Idx: int32(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Idx != int32(6+i) {
			t.Fatalf("span %d has idx %d, want %d (oldest-first last-N)", i, s.Idx, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestHistogramAggregation(t *testing.T) {
	tr := New(Config{Sample: 1})
	tr.Record(Span{Kind: KindRoot, Name: "open", Start: 0, End: 100})
	tr.Record(Span{Kind: KindRoot, Name: "open", Start: 0, End: 200})
	tr.Record(Span{Kind: KindRoot, Name: "close", Start: 0, End: 50})
	tr.Record(Span{Kind: KindService, Where: ^int32(3), Start: 10, End: 30})
	tr.Record(Span{Kind: KindQueue, Where: ^int32(3), Start: 0, End: 10})
	ops := tr.OpQuantiles()
	if ops["open"].N != 2 || ops["close"].N != 1 {
		t.Fatalf("op quantiles: %+v", ops)
	}
	svc, q := tr.ServerQuantiles()
	if svc[3].N != 1 || q[3].N != 1 {
		t.Fatalf("server quantiles: svc=%+v q=%+v", svc, q)
	}
	names := tr.OpNames()
	if len(names) != 2 || names[0] != "close" || names[1] != "open" {
		t.Fatalf("op names: %v", names)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || len(tr.OpQuantiles()) != 0 {
		t.Fatal("reset did not clear")
	}
}

// sampleTree builds a realistic two-root forest with nested spans.
func sampleTree() []Span {
	return []Span{
		{Trace: 1, ID: 1, Kind: KindRoot, Name: "close", Where: 0, Start: 0, End: 1000},
		{Trace: 1, ID: 2, Parent: 1, Kind: KindRPC, Name: "close", Where: 0, Start: 10, End: 900},
		{Trace: 1, ID: 100, Parent: 2, Kind: KindNetReq, Name: "close", Where: ^int32(0), Start: 10, End: 60},
		{Trace: 1, ID: 101, Parent: 2, Kind: KindQueue, Name: "close", Where: ^int32(0), Start: 60, End: 200},
		{Trace: 1, ID: 102, Parent: 2, Kind: KindService, Name: "close", Where: ^int32(0), Start: 200, End: 700},
		{Trace: 1, ID: 103, Parent: 102, Kind: KindSub, Name: "close", Where: ^int32(0), Idx: 0, Start: 200, End: 400},
		{Trace: 1, ID: 104, Parent: 102, Kind: KindSub, Name: "unlink", Where: ^int32(0), Idx: 1, Start: 400, End: 700},
		{Trace: 1, ID: 105, Parent: 2, Kind: KindWAL, Name: "close", Where: ^int32(0), Start: 700, End: 890},
		{Trace: 2, ID: 3, Kind: KindRoot, Name: "read", Where: 1, Start: 500, End: 800},
	}
}

// permuteSpans returns the tree with shuffled order, shifted times, and
// remapped IDs — everything the canonical encoding must be blind to.
func permuteSpans(spans []Span, seed int64) []Span {
	rng := rand.New(rand.NewSource(seed))
	idMap := make(map[uint64]uint64)
	idMap[0] = 0
	for _, s := range spans {
		idMap[s.ID] = s.ID*7919 + uint64(seed)
	}
	out := append([]Span(nil), spans...)
	shift := sim.Cycles(rng.Intn(10000))
	for i := range out {
		out[i].ID = idMap[out[i].ID]
		out[i].Parent = idMap[out[i].Parent]
		out[i].Start += shift
		out[i].End += shift
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestCanonicalInvariance(t *testing.T) {
	base := EncodeCanonical(sampleTree())
	for seed := int64(1); seed <= 5; seed++ {
		got := EncodeCanonical(permuteSpans(sampleTree(), seed))
		if !bytes.Equal(base, got) {
			t.Fatalf("canonical encoding differs under permutation seed %d", seed)
		}
	}
	// A structural change must change the bytes.
	changed := sampleTree()
	changed[6].Idx = 2
	if bytes.Equal(base, EncodeCanonical(changed)) {
		t.Fatal("structural change did not change canonical bytes")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	enc := EncodeCanonical(sampleTree())
	roots, err := DecodeCanonical(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("decoded %d roots, want 2", len(roots))
	}
	// Find the close root and check its nesting.
	var closeRoot *CanonNode
	for _, r := range roots {
		if r.Name == "close" && r.Kind == KindRoot {
			closeRoot = r
		}
	}
	if closeRoot == nil || len(closeRoot.Children) != 1 {
		t.Fatalf("close root malformed: %+v", closeRoot)
	}
	rpc := closeRoot.Children[0]
	if rpc.Kind != KindRPC || len(rpc.Children) != 4 {
		t.Fatalf("rpc span malformed: kind=%v children=%d", rpc.Kind, len(rpc.Children))
	}
	var svc *CanonNode
	for _, c := range rpc.Children {
		if c.Kind == KindService {
			svc = c
		}
	}
	if svc == nil || len(svc.Children) != 2 {
		t.Fatalf("service span should hold 2 sub spans: %+v", svc)
	}
	if _, err := DecodeCanonical([]byte("garbage")); err == nil {
		t.Fatal("garbage should not decode")
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleTree()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Args struct {
				Span   string `json:"span"`
				Parent string `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(sampleTree()) {
		t.Fatalf("exported %d events, want %d", len(doc.TraceEvents), len(sampleTree()))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid == 0 || ev.Tid == 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
}
