package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Canonical structural encoding.
//
// Virtual timing is deterministic for a single client, but a multi-process
// run races real goroutine scheduling into queue-delay cycles (servers pop
// whichever request arrived earliest among those *currently* queued), so
// cycle counts can differ run-to-run while the request structure — which
// ops ran, which servers they visited, how each decomposed into
// net/queue/service/sub/WAL segments, which retried on EEPOCH — cannot.
// EncodeCanonical therefore strips times and IDs and emits the pure span
// tree in a canonical order: every span is encoded as
//
//	(kind, name, idx, err, where, children...)
//
// with children sorted by their own complete encoding (content, not ID or
// arrival order). Under a fixed chaos tuple the result is byte-identical
// across runs, which makes traces themselves chaos-checkable artifacts.

type canonNode struct {
	span     Span
	children []*canonNode
	enc      []byte
}

// buildForest groups spans into trees by parent links. Spans whose parent
// is missing (evicted from the ring, or a true root) become forest roots.
func buildForest(spans []Span) []*canonNode {
	nodes := make(map[uint64]*canonNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &canonNode{span: spans[i]}
	}
	var roots []*canonNode
	for i := range spans {
		n := nodes[spans[i].ID]
		if p, ok := nodes[spans[i].Parent]; ok && spans[i].Parent != spans[i].ID {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

func (n *canonNode) encode() []byte {
	if n.enc != nil {
		return n.enc
	}
	var b []byte
	b = binary.AppendUvarint(b, uint64(n.span.Kind))
	b = binary.AppendUvarint(b, uint64(len(n.span.Name)))
	b = append(b, n.span.Name...)
	b = binary.AppendVarint(b, int64(n.span.Idx))
	b = binary.AppendVarint(b, int64(n.span.Err))
	b = binary.AppendVarint(b, int64(n.span.Where))
	kids := make([][]byte, len(n.children))
	for i, c := range n.children {
		kids[i] = c.encode()
	}
	sort.Slice(kids, func(i, j int) bool { return string(kids[i]) < string(kids[j]) })
	b = binary.AppendUvarint(b, uint64(len(kids)))
	for _, k := range kids {
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
	}
	n.enc = b
	return b
}

var canonMagic = []byte("hare-trace-v1\n")

// EncodeCanonical renders spans as the canonical structural span forest:
// deterministic bytes for a deterministic execution structure, regardless
// of goroutine scheduling, ring insertion order, or span IDs.
func EncodeCanonical(spans []Span) []byte {
	roots := buildForest(spans)
	encs := make([][]byte, len(roots))
	for i, r := range roots {
		encs[i] = r.encode()
	}
	sort.Slice(encs, func(i, j int) bool { return string(encs[i]) < string(encs[j]) })
	out := append([]byte(nil), canonMagic...)
	out = binary.AppendUvarint(out, uint64(len(encs)))
	for _, e := range encs {
		out = binary.AppendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	return out
}

// CanonNode is one decoded node of a canonical span forest.
type CanonNode struct {
	Kind     Kind
	Name     string
	Idx      int32
	Err      int32
	Where    int32
	Children []*CanonNode
}

// DecodeCanonical parses bytes produced by EncodeCanonical.
func DecodeCanonical(b []byte) ([]*CanonNode, error) {
	if len(b) < len(canonMagic) || string(b[:len(canonMagic)]) != string(canonMagic) {
		return nil, errors.New("trace: bad canonical magic")
	}
	b = b[len(canonMagic):]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, errors.New("trace: truncated forest count")
	}
	b = b[sz:]
	roots := make([]*CanonNode, 0, n)
	for i := uint64(0); i < n; i++ {
		ln, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < ln {
			return nil, fmt.Errorf("trace: truncated root %d", i)
		}
		node, rest, err := decodeNode(b[sz : sz+int(ln)])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("trace: %d trailing bytes in root %d", len(rest), i)
		}
		roots = append(roots, node)
		b = b[sz+int(ln):]
	}
	return roots, nil
}

func decodeNode(b []byte) (*CanonNode, []byte, error) {
	fail := errors.New("trace: truncated node")
	k, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fail
	}
	b = b[sz:]
	nameLen, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < nameLen {
		return nil, nil, fail
	}
	name := string(b[sz : sz+int(nameLen)])
	b = b[sz+int(nameLen):]
	var ints [3]int64
	for i := range ints {
		v, sz := binary.Varint(b)
		if sz <= 0 {
			return nil, nil, fail
		}
		ints[i] = v
		b = b[sz:]
	}
	nkids, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fail
	}
	b = b[sz:]
	node := &CanonNode{
		Kind:  Kind(k),
		Name:  name,
		Idx:   int32(ints[0]),
		Err:   int32(ints[1]),
		Where: int32(ints[2]),
	}
	for i := uint64(0); i < nkids; i++ {
		ln, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < ln {
			return nil, nil, fail
		}
		kid, rest, err := decodeNode(b[sz : sz+int(ln)])
		if err != nil {
			return nil, nil, err
		}
		if len(rest) != 0 {
			return nil, nil, errors.New("trace: trailing bytes in child")
		}
		node.Children = append(node.Children, kid)
		b = b[sz+int(ln):]
	}
	return node, b, nil
}
