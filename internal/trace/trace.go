// Package trace provides virtual-time distributed tracing for the Hare
// reproduction. Every sampled client FS operation opens a root span whose
// trace/span IDs ride inside proto requests to the servers, which attach
// child spans for network delivery, queueing, service, batched sub-ops, and
// WAL group-commit. Spans carry virtual (sim.Cycles) timestamps, so a trace
// is a deterministic artifact of the simulation rather than of wall-clock
// scheduling: under a fixed fault schedule the structural span tree is
// byte-identical across runs (see EncodeCanonical).
//
// The collector is a bounded ring (compact, fixed memory) plus power-of-two
// latency histograms aggregated per op kind and per server, so tracing can
// stay on during soaks without unbounded growth.
package trace

import (
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind classifies a span within the request path.
type Kind uint8

const (
	// KindRoot is a client FS operation (open, close, read, ...).
	KindRoot Kind = iota
	// KindRPC is one client request/reply exchange under a root.
	KindRPC
	// KindNetReq is the request's time on the wire (send → arrive),
	// including any fault-injected delay.
	KindNetReq
	// KindQueue is the time a request waited at a busy server.
	KindQueue
	// KindService is the server-side service time.
	KindService
	// KindSub is one sub-operation dispatched from a batch envelope.
	KindSub
	// KindWAL is durability staging: service end → group-commit ack.
	KindWAL
	// KindWriteback is client-side dirty-line writeback during close/fsync.
	KindWriteback
	// KindEpochRefresh is one EEPOCH refresh-and-retry round trip.
	KindEpochRefresh
	// KindRepl is one replication ship (and, in sync mode, its ack wait)
	// piggybacked on a request's group commit (DESIGN.md §12).
	KindRepl
	// KindFailover is a control-plane promotion: seal → publish → install.
	KindFailover
)

var kindNames = [...]string{
	KindRoot:         "root",
	KindRPC:          "rpc",
	KindNetReq:       "net",
	KindQueue:        "queue",
	KindService:      "service",
	KindSub:          "sub",
	KindWAL:          "wal",
	KindWriteback:    "writeback",
	KindEpochRefresh: "eepoch",
	KindRepl:         "repl",
	KindFailover:     "failover",
}

// String returns the span-kind label used in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Span is one timed region of a traced request. Start/End are virtual
// times on the recording entity's clock. Idx disambiguates structurally
// identical siblings (sub-op index within a batch, retry number, flushed
// line count for writebacks).
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Kind   Kind
	Name   string
	Where  int32 // recording entity: client ID or ^serverID
	Start  sim.Cycles
	End    sim.Cycles
	Err    int32
	Idx    int32
}

// Config controls tracing for one deployment, in the spirit of
// core.Techniques: the zero value disables tracing entirely.
type Config struct {
	// Sample records 1-in-N root spans (1 = every op, 0 = off). Child
	// spans inherit the root's sampling decision via ID propagation, so
	// an unsampled op generates no spans anywhere in the stack.
	Sample int
	// Ring bounds the number of retained spans (default 1<<16). When the
	// ring wraps, the oldest spans are dropped; histograms keep counting.
	Ring int
}

// Enabled reports whether this configuration records anything.
func (c Config) Enabled() bool { return c.Sample > 0 }

// DefaultRing is the span-ring capacity when Config.Ring is zero.
const DefaultRing = 1 << 16

// Tracer is the shared span collector for one deployment. All methods are
// safe for concurrent use; a nil *Tracer is a valid, disabled tracer, so
// call sites can stay unconditional on the hot path.
type Tracer struct {
	cfg Config

	mu      sync.Mutex
	ring    []Span
	next    int
	wrapped bool
	dropped uint64
	opHist  map[string]*stats.Hist // root-span latency per op name
	srvOp   map[int]*stats.Hist    // service latency per server
	srvQ    map[int]*stats.Hist    // queue delay per server
}

// New builds a Tracer for cfg, or nil when cfg is disabled.
func New(cfg Config) *Tracer {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	return &Tracer{
		cfg:    cfg,
		ring:   make([]Span, 0, cfg.Ring),
		opHist: make(map[string]*stats.Hist),
		srvOp:  make(map[int]*stats.Hist),
		srvQ:   make(map[int]*stats.Hist),
	}
}

// Sample returns the root-span sampling interval (0 when disabled).
func (t *Tracer) Sample() int {
	if t == nil {
		return 0
	}
	return t.cfg.Sample
}

// Record adds a completed span to the ring and updates the histograms.
// Safe on a nil Tracer (no-op).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
		t.wrapped = true
		t.dropped++
	}
	d := uint64(s.End - s.Start)
	switch s.Kind {
	case KindRoot:
		h := t.opHist[s.Name]
		if h == nil {
			h = &stats.Hist{}
			t.opHist[s.Name] = h
		}
		h.Record(d)
	case KindService:
		t.histFor(t.srvOp, s.Where).Record(d)
	case KindQueue:
		t.histFor(t.srvQ, s.Where).Record(d)
	}
}

func (t *Tracer) histFor(m map[int]*stats.Hist, where int32) *stats.Hist {
	srv := int(^where)
	h := m[srv]
	if h == nil {
		h = &stats.Hist{}
		m[srv] = h
	}
	return h
}

// Spans returns the retained spans, oldest first. Safe on nil (empty).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// OpQuantiles returns per-op-kind root latency summaries (op → quantiles).
func (t *Tracer) OpQuantiles() map[string]stats.Quantiles {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]stats.Quantiles, len(t.opHist))
	for op, h := range t.opHist {
		out[op] = h.Quantiles()
	}
	return out
}

// ServerQuantiles returns per-server service and queue latency summaries.
func (t *Tracer) ServerQuantiles() (service, queue map[int]stats.Quantiles) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	service = make(map[int]stats.Quantiles, len(t.srvOp))
	for srv, h := range t.srvOp {
		service[srv] = h.Quantiles()
	}
	queue = make(map[int]stats.Quantiles, len(t.srvQ))
	for srv, h := range t.srvQ {
		queue[srv] = h.Quantiles()
	}
	return service, queue
}

// OpNames returns the recorded op kinds, sorted.
func (t *Tracer) OpNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.opHist))
	for op := range t.opHist {
		names = append(names, op)
	}
	sort.Strings(names)
	return names
}

// Reset drops all retained spans and histograms (emitter IDs keep
// advancing, so spans recorded before and after a Reset never collide).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.wrapped = false
	t.dropped = 0
	t.opHist = make(map[string]*stats.Hist)
	t.srvOp = make(map[int]*stats.Hist)
	t.srvQ = make(map[int]*stats.Hist)
}

// Emitter allocates span IDs for one entity. IDs are namespaced by the
// entity and (for servers) an incarnation number, so IDs stay unique —
// without coordination — across clients, servers, and server crash/recover
// cycles, and they are deterministic because every entity is
// single-threaded in the simulation.
//
// Layout: bit 63 = server flag; bits 62..48 = entity ID; bits 47..40 =
// incarnation; bits 39..0 = per-emitter sequence.
type Emitter struct {
	base uint64
	seq  uint64 // owned by the entity's goroutine
}

// ClientEmitter returns the ID allocator for a client.
func ClientEmitter(clientID int32) *Emitter {
	return &Emitter{base: (uint64(uint32(clientID)) & 0x7fff) << 48}
}

// ServerEmitter returns the ID allocator for one incarnation of a server.
// Recovery after a crash must use a fresh incarnation so replayed or
// re-served requests never reuse a pre-crash span ID.
func ServerEmitter(serverID int, incarnation uint32) *Emitter {
	return &Emitter{base: 1<<63 |
		(uint64(serverID)&0x7fff)<<48 |
		(uint64(incarnation)&0xff)<<40}
}

// Next returns a fresh span ID. Not safe for concurrent use; an Emitter
// belongs to its entity's goroutine.
func (e *Emitter) Next() uint64 {
	e.seq++
	return e.base | (e.seq & (1<<40 - 1))
}
