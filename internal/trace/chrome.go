package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteChrome renders spans as Chrome trace_event JSON ("X" complete
// events), loadable in Perfetto or chrome://tracing. Virtual cycles map to
// microseconds 1:1 for display. Each entity (client or server) becomes a
// pid/tid row; span IDs and parent links travel in args so the exact tree
// survives the export. Events are emitted in a deterministic order, so a
// deterministic run exports byte-identical JSON.
func WriteChrome(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End > b.End // parents before children at equal start
		}
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.ID < b.ID
	})
	var sb strings.Builder
	sb.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	for i, s := range sorted {
		if i > 0 {
			sb.WriteString(",\n")
		}
		pid, tid := entityPidTid(s.Where)
		dur := uint64(s.End - s.Start)
		fmt.Fprintf(&sb,
			`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,`+
				`"args":{"trace":"%#x","span":"%#x","parent":"%#x","err":%d,"idx":%d}}`,
			s.Name, s.Kind.String(), uint64(s.Start), dur, pid, tid,
			s.Trace, s.ID, s.Parent, s.Err, s.Idx)
	}
	sb.WriteString("\n],\"otherData\":{\"clock\":\"virtual-cycles-as-us\"}}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// entityPidTid maps a span's recording entity to a Chrome pid/tid pair:
// clients are pid 1 with one tid per client, servers pid 2 with one tid
// per server, so Perfetto renders a row per simulated entity.
func entityPidTid(where int32) (pid, tid int) {
	if where >= 0 {
		return 1, int(where) + 1
	}
	return 2, int(^where) + 1
}
