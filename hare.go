// Package hare is the public API of this reproduction of "Hare: a file
// system for non-cache-coherent multicores" (Gruenwald, Sironi, Kaashoek,
// Zeldovich; EuroSys 2015).
//
// A Hare deployment consists of per-core client libraries and a set of file
// servers that communicate by message passing and share a buffer cache in
// (non-cache-coherent) DRAM. This package re-exports the assembled system
// from the internal packages so applications can:
//
//   - build a deployment (New / Config),
//   - attach POSIX-like clients to cores (System.NewClient), and
//   - run multi-process workloads through the scheduling servers
//     (System.Procs, the sched package's process abstraction).
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// mapping from the paper's design to the packages in this repository.
package hare

import (
	"io"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/place"
	"repro/internal/repl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Re-exported configuration types.
type (
	// Config describes a Hare deployment (cores, servers, techniques).
	Config = core.Config
	// Techniques toggles the five techniques evaluated in the paper.
	Techniques = core.Techniques
	// System is a running Hare deployment.
	System = core.System
	// Client is the per-process client library implementing the
	// POSIX-like API.
	Client = client.Client
	// Options are the client-side technique toggles.
	Options = client.Options

	// FS is the backend-agnostic POSIX-like interface implemented by the
	// Hare client library (and by the baseline file systems used in the
	// evaluation harness).
	FS = fsapi.Client
	// FD is a process-local file descriptor.
	FD = fsapi.FD
	// Mode holds permission bits.
	Mode = fsapi.Mode
	// Stat is file metadata.
	Stat = fsapi.Stat
	// Dirent is one directory entry.
	Dirent = fsapi.Dirent
	// MkdirOpt controls directory creation (including Hare's per-directory
	// distribution flag).
	MkdirOpt = fsapi.MkdirOpt
	// Errno is a POSIX-style error number.
	Errno = fsapi.Errno

	// Durability configures the write-ahead-log subsystem (per-server
	// logging, group commit, checkpoints, and the Crash/Recover API);
	// the zero value disables it, matching the paper's in-memory-only
	// design. See DESIGN.md §6.
	Durability = core.Durability
	// RecoveryStats describes one server's crash recovery (checkpoint
	// bytes loaded, records replayed, virtual time charged).
	RecoveryStats = wal.RecoveryStats
	// WalStats counts one server's write-ahead-log activity.
	WalStats = wal.Stats

	// Replication configures WAL-shipped shard replication (Config.
	// Replication; requires Durability): each server ships its log batches
	// to a ring follower so a crashed server can be failed over by
	// promoting the warm replica (System.Failover) instead of replaying
	// its log. The zero value disables it. See DESIGN.md §12.
	Replication = repl.Config
	// ReplMode selects the replication discipline (ReplOff / ReplSync /
	// ReplAsync).
	ReplMode = repl.Mode
	// FailoverReport describes one promotion: the follower consumed, the
	// stall, the published epoch, and any acked records lost (zero under
	// sync replication).
	FailoverReport = core.FailoverReport
	// ReplStats reports one primary's shipping horizons (System.ReplicaStats).
	ReplStats = core.ReplStats

	// Economy aggregates a deployment's message-economy counters
	// (messages, bytes, batched sub-ops, queueing delay, migrated shard
	// entries); returned by System.MessageEconomy. See DESIGN.md §7, §9.
	Economy = stats.Economy

	// TraceConfig configures request tracing and latency histograms
	// (Config.Trace); the zero value disables tracing. See DESIGN.md §11.
	TraceConfig = trace.Config
	// Tracer collects spans and latency histograms; returned by
	// System.Tracer (nil when tracing is disabled).
	Tracer = trace.Tracer
	// Span is one traced interval of a request's life.
	Span = trace.Span
	// LatencyQuantiles summarizes one latency histogram (p50/p95/p99/p999).
	LatencyQuantiles = stats.Quantiles

	// PlacePolicy selects how directory-entry shards are placed on file
	// servers (DESIGN.md §9): PlaceModulo reproduces the paper's static
	// hash % NSERVERS routing; PlaceRing uses consistent hashing so
	// System.AddServer / System.RemoveServer move only ~1/N of the shards.
	PlacePolicy = place.Policy

	// Proc is a simulated process bound to a core and a client library.
	Proc = sched.Proc
	// ProcFunc is the body of a simulated process.
	ProcFunc = sched.ProcFunc
	// Handle waits for a spawned process.
	Handle = sched.Handle
	// Policy selects where exec places new processes.
	Policy = sched.Policy
	// Cycles is virtual time in CPU cycles.
	Cycles = sim.Cycles
)

// Open flags (subset of POSIX).
const (
	ORdOnly = fsapi.ORdOnly
	OWrOnly = fsapi.OWrOnly
	ORdWr   = fsapi.ORdWr
	OCreate = fsapi.OCreate
	OExcl   = fsapi.OExcl
	OTrunc  = fsapi.OTrunc
	OAppend = fsapi.OAppend
)

// Whence values for Seek.
const (
	SeekSet = fsapi.SeekSet
	SeekCur = fsapi.SeekCur
	SeekEnd = fsapi.SeekEnd
)

// Common errno values.
const (
	ENOENT    = fsapi.ENOENT
	EEXIST    = fsapi.EEXIST
	ENOTDIR   = fsapi.ENOTDIR
	EISDIR    = fsapi.EISDIR
	ENOTEMPTY = fsapi.ENOTEMPTY
	EBADF     = fsapi.EBADF
	EACCES    = fsapi.EACCES
	EINVAL    = fsapi.EINVAL
	EPIPE     = fsapi.EPIPE
	ENOSPC    = fsapi.ENOSPC
)

// Placement policies for remote execution.
const (
	PolicyRoundRobin = sched.PolicyRoundRobin
	PolicyRandom     = sched.PolicyRandom
	PolicyLocal      = sched.PolicyLocal
)

// Shard-placement policies for elastic deployments (Config.PlacePolicy).
const (
	PlaceModulo = place.PolicyModulo
	PlaceRing   = place.PolicyRing
)

// Replication modes (Config.Replication.Mode). ReplSync holds each client
// reply for the follower's ack, so promotion never loses an acknowledged
// write; ReplAsync ships without waiting and bounds the loss at one window.
const (
	ReplOff   = repl.Off
	ReplSync  = repl.Sync
	ReplAsync = repl.Async
)

// Mode constants.
const (
	Mode644 = fsapi.Mode644
	Mode755 = fsapi.Mode755
)

// DefaultConfig mirrors the paper's standard setup: a 40-core machine in the
// timesharing configuration with every technique enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// AllTechniques enables every technique (the standard Hare configuration).
func AllTechniques() Techniques { return core.AllTechniques() }

// New builds (but does not start) a Hare deployment.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// Start builds and starts a Hare deployment in one call.
func Start(cfg Config) (*System, error) {
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	sys.Start()
	return sys, nil
}

// IsErrno reports whether err is the given POSIX error number.
func IsErrno(err error, want Errno) bool { return fsapi.IsErrno(err, want) }

// WriteChromeTrace exports spans (from Tracer.Spans) as Chrome trace_event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span) error { return trace.WriteChrome(w, spans) }
