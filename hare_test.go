package hare_test

import (
	"bytes"
	"testing"

	hare "repro"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := hare.DefaultConfig()
	if cfg.Cores != 40 || cfg.Servers != 40 || !cfg.Timeshare {
		t.Fatalf("default config %+v is not the paper's 40-core timeshare setup", cfg)
	}
	tech := hare.AllTechniques()
	if !tech.DirectoryDistribution || !tech.DirectoryBroadcast || !tech.DirectAccess ||
		!tech.DirectoryCache || !tech.CreationAffinity || !tech.RPCPipelining || !tech.DataPath {
		t.Fatalf("AllTechniques left something off: %+v", tech)
	}
}

func TestStartClientRoundTrip(t *testing.T) {
	cfg := hare.DefaultConfig()
	cfg.Cores = 4
	cfg.Servers = 4
	sys, err := hare.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	cli := sys.NewClient(0)
	if err := cli.Mkdir("/data", hare.MkdirOpt{Distributed: true}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("public api"), 1200) // spans blocks
	fd, err := cli.Open("/data/file", hare.OCreate|hare.OWrOnly, hare.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cli.Write(fd, payload); err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := cli.Close(fd); err != nil {
		t.Fatal(err)
	}

	// Close-to-open consistency across cores through the public surface.
	other := sys.NewClient(2)
	rfd, err := other.Open("/data/file", hare.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	n, err := other.Read(rfd, got)
	if err != nil || n != len(payload) || !bytes.Equal(got[:n], payload) {
		t.Fatalf("read back %d bytes, err %v", n, err)
	}
	if err := other.Close(rfd); err != nil {
		t.Fatal(err)
	}

	if _, err := cli.Open("/missing", hare.ORdOnly, 0); !hare.IsErrno(err, hare.ENOENT) {
		t.Fatalf("missing file: %v", err)
	}
	if cli.Clock() == 0 {
		t.Fatal("client clock did not advance")
	}
	if sys.Seconds(hare.Cycles(2_400_000_000)) < 0.9 {
		t.Fatal("Seconds conversion broken")
	}
}

func TestCrashRecoverThroughPublicAPI(t *testing.T) {
	cfg := hare.DefaultConfig()
	cfg.Cores = 2
	cfg.Servers = 2
	cfg.Durability = hare.Durability{Enabled: true}
	sys, err := hare.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	cli := sys.NewClient(0)
	fd, err := cli.Open("/durable", hare.OCreate|hare.OWrOnly, hare.Mode644)
	if err != nil {
		t.Fatal(err)
	}
	cli.Write(fd, []byte("survives"))
	cli.Close(fd)

	if err := sys.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumServers(); i++ {
		if err := sys.Crash(i); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
		st, err := sys.Recover(i)
		if err != nil {
			t.Fatalf("recover %d: %v", i, err)
		}
		var _ hare.RecoveryStats = st
	}
	cli2 := sys.NewClient(1)
	rfd, err := cli2.Open("/durable", hare.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := cli2.Read(rfd, buf)
	if err != nil || string(buf[:n]) != "survives" {
		t.Fatalf("read after recovery: %q, %v", buf[:n], err)
	}
	cli2.Close(rfd)

	var stats []hare.WalStats = sys.WalStats()
	var recs uint64
	for _, s := range stats {
		recs += s.Records
	}
	if recs == 0 {
		t.Fatal("no WAL records counted through public stats")
	}
}

func TestFaultAPIRejectedWithoutDurability(t *testing.T) {
	cfg := hare.DefaultConfig()
	cfg.Cores = 2
	cfg.Servers = 2
	sys, err := hare.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if err := sys.Crash(0); err == nil {
		t.Fatal("Crash accepted with durability disabled")
	}
}
