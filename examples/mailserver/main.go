// Mailserver: a maildir-style mail delivery service running across many
// cores of a Hare deployment (the workload behind the paper's mailbench).
//
// Worker processes are spawned onto different cores via Hare's remote
// execution protocol. Each delivery creates a message in the user's tmp/
// directory, fsyncs it, and renames it into new/ — the rename exercises the
// ADD_MAP/RM_MAP protocol across two file servers, and the shared spool
// directory exercises directory distribution.
//
// Run with: go run ./examples/mailserver
package main

import (
	"fmt"
	"log"

	hare "repro"
)

const (
	users          = 4
	messagesPer    = 25
	messagePayload = "Subject: hello\n\nA short message delivered through Hare.\n"
)

func main() {
	cfg := hare.DefaultConfig()
	cfg.Cores = 8
	cfg.Servers = 8
	sys, err := hare.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	procs := sys.Procs()

	// Set up the spool: one maildir per user, all distributed.
	setup := procs.StartRoot(0, []string{"setup"}, func(p *hare.Proc) int {
		for u := 0; u < users; u++ {
			base := fmt.Sprintf("/spool/user%d", u)
			for _, dir := range []string{"/spool", base, base + "/tmp", base + "/new"} {
				if err := p.FS.Mkdir(dir, hare.MkdirOpt{Distributed: true}); err != nil && !hare.IsErrno(err, hare.EEXIST) {
					return 1
				}
			}
		}
		return 0
	})
	if setup.Wait() != 0 {
		log.Fatal("spool setup failed")
	}

	// One delivery agent per user, placed on cores by the scheduler.
	root := procs.StartRoot(0, []string{"smtpd"}, func(p *hare.Proc) int {
		var handles []*hare.Handle
		for u := 0; u < users; u++ {
			user := u
			h, err := p.Spawn([]string{fmt.Sprintf("deliver-user%d", user)}, func(wp *hare.Proc) int {
				return deliver(wp, user)
			}, true)
			if err != nil {
				return 1
			}
			handles = append(handles, h)
		}
		status := 0
		for _, h := range handles {
			if s := h.Wait(); s != 0 {
				status = s
			}
		}
		return status
	})
	if root.Wait() != 0 {
		log.Fatal("delivery failed")
	}

	// Report: scan every mailbox from a fresh client.
	cli := sys.NewClient(1)
	total := 0
	for u := 0; u < users; u++ {
		ents, err := cli.ReadDir(fmt.Sprintf("/spool/user%d/new", u))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user%d: %d messages\n", u, len(ents))
		total += len(ents)
	}
	fmt.Printf("delivered %d messages in %.3f ms of virtual time\n",
		total, sys.Seconds(procs.MaxEndTime())*1000)
}

// deliver is the per-user delivery agent: it writes each message to tmp/,
// forces it to the shared buffer cache, and renames it into new/.
func deliver(p *hare.Proc, user int) int {
	fs := p.FS
	base := fmt.Sprintf("/spool/user%d", user)
	for m := 0; m < messagesPer; m++ {
		tmp := fmt.Sprintf("%s/tmp/msg%04d", base, m)
		fd, err := fs.Open(tmp, hare.OCreate|hare.OWrOnly, hare.Mode644)
		if err != nil {
			return 1
		}
		if _, err := fs.Write(fd, []byte(messagePayloadFor(user, m))); err != nil {
			return 1
		}
		if err := fs.Fsync(fd); err != nil {
			return 1
		}
		if err := fs.Close(fd); err != nil {
			return 1
		}
		if err := fs.Rename(tmp, fmt.Sprintf("%s/new/msg%04d", base, m)); err != nil {
			return 1
		}
	}
	return 0
}

func messagePayloadFor(user, m int) string {
	return fmt.Sprintf("To: user%d\nMessage-Id: <%d-%d@hare>\n%s", user, user, m, messagePayload)
}
