// Quickstart: build a small Hare deployment, share a file and a pipe between
// processes on different cores, and print where the file system placed each
// inode.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hare "repro"
)

func main() {
	// An 8-core machine in the paper's timesharing configuration: every
	// core runs a file server next to the application.
	cfg := hare.DefaultConfig()
	cfg.Cores = 8
	cfg.Servers = 8
	sys, err := hare.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// Attach a client library on core 0 and create a distributed directory:
	// its entries will be hashed across all eight file servers.
	cli := sys.NewClient(0)
	if err := cli.Mkdir("/data", hare.MkdirOpt{Distributed: true}); err != nil {
		log.Fatal(err)
	}

	// Create a few files and show which server each inode landed on.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("/data/file%d.txt", i)
		fd, err := cli.Open(name, hare.OCreate|hare.OWrOnly, hare.Mode644)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cli.Write(fd, []byte(fmt.Sprintf("hello from file %d\n", i))); err != nil {
			log.Fatal(err)
		}
		if err := cli.Close(fd); err != nil {
			log.Fatal(err)
		}
		st, err := cli.Stat(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s inode %-4d on server %d\n", name, st.Ino, st.Server)
	}

	// Close-to-open consistency across cores: a client on core 5 opens the
	// file after the writer closed it and sees the data, even though the
	// simulated hardware has no cache coherence.
	other := sys.NewClient(5)
	fd, err := other.Open("/data/file0.txt", hare.ORdOnly, 0)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := other.Read(fd, buf)
	if err != nil {
		log.Fatal(err)
	}
	other.Close(fd)
	fmt.Printf("core 5 read: %q\n", buf[:n])

	// Shared file descriptors: fork a child that continues reading from the
	// parent's offset (the offset migrates to the file server).
	fd, _ = cli.Open("/data/file1.txt", hare.ORdOnly, 0)
	childFS, err := cli.CloneForFork(3)
	if err != nil {
		log.Fatal(err)
	}
	child := childFS.(hare.FS)
	n, _ = cli.Read(fd, buf[:6])
	fmt.Printf("parent read %q, ", buf[:n])
	n, _ = child.Read(fd, buf[:6])
	fmt.Printf("child continued with %q (shared offset)\n", buf[:n])
	child.Close(fd)
	cli.Close(fd)

	// The directory listing merges shards from every server.
	ents, err := cli.ReadDir("/data")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("/data holds %d entries; virtual time elapsed: %.3f ms\n",
		len(ents), sys.Seconds(cli.Clock())*1000)
}
