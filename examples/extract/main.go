// Extract: an archive-extraction pipeline on Hare (the scenario behind the
// paper's `extract` benchmark): a decompressor process streams data through
// a pipe to an unpacker that creates the directory tree and files, then a
// second pass verifies the extracted contents and demonstrates that an
// unlinked-but-open file remains readable (the POSIX corner case networked
// file systems typically get wrong, §2.2).
//
// Run with: go run ./examples/extract
package main

import (
	"bytes"
	"fmt"
	"log"

	hare "repro"
)

const (
	dirs       = 6
	filesPer   = 8
	fileSize   = 2048
	archiveDir = "/archive"
)

func main() {
	cfg := hare.DefaultConfig()
	cfg.Cores = 4
	cfg.Servers = 4
	sys, err := hare.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	procs := sys.Procs()

	root := procs.StartRoot(0, []string{"tar", "-xzf", "archive.tgz"}, func(p *hare.Proc) int {
		fs := p.FS
		if err := fs.Mkdir(archiveDir, hare.MkdirOpt{Distributed: true}); err != nil {
			return 1
		}
		// The decompressor child writes the archive stream into a pipe.
		r, w, err := fs.Pipe()
		if err != nil {
			return 1
		}
		gunzip, err := p.Spawn([]string{"gunzip"}, func(cp *hare.Proc) int {
			cfs := cp.FS
			chunk := payloadChunk()
			total := dirs * filesPer * fileSize
			for written := 0; written < total; {
				n := len(chunk)
				if written+n > total {
					n = total - written
				}
				cp.Compute(50_000) // decompression work per chunk
				if _, err := cfs.Write(w, chunk[:n]); err != nil {
					return 1
				}
				written += n
			}
			cfs.Close(w)
			cfs.Close(r)
			return 0
		}, false)
		if err != nil {
			return 1
		}
		fs.Close(w)

		// The unpacker reads the stream and lays out the tree.
		buf := make([]byte, fileSize)
		for d := 0; d < dirs; d++ {
			dir := fmt.Sprintf("%s/dir%02d", archiveDir, d)
			if err := fs.Mkdir(dir, hare.MkdirOpt{Distributed: true}); err != nil {
				return 1
			}
			for f := 0; f < filesPer; f++ {
				for need := 0; need < fileSize; {
					n, err := fs.Read(r, buf[need:])
					if err != nil || n == 0 {
						return 1
					}
					need += n
				}
				fd, err := fs.Open(fmt.Sprintf("%s/file%02d", dir, f), hare.OCreate|hare.OWrOnly, hare.Mode644)
				if err != nil {
					return 1
				}
				if _, err := fs.Write(fd, buf); err != nil {
					return 1
				}
				if err := fs.Close(fd); err != nil {
					return 1
				}
			}
		}
		fs.Close(r)
		return gunzip.Wait()
	})
	if root.Wait() != 0 {
		log.Fatal("extraction failed")
	}

	// Verify from another core, then demonstrate the unlinked-open case.
	cli := sys.NewClient(2)
	want := payloadChunk()
	verified := 0
	for d := 0; d < dirs; d++ {
		for f := 0; f < filesPer; f++ {
			path := fmt.Sprintf("%s/dir%02d/file%02d", archiveDir, d, f)
			fd, err := cli.Open(path, hare.ORdOnly, 0)
			if err != nil {
				log.Fatal(err)
			}
			got := make([]byte, fileSize)
			if _, err := cli.Read(fd, got); err != nil {
				log.Fatal(err)
			}
			cli.Close(fd)
			if !bytes.Equal(got, want) {
				log.Fatalf("%s: extracted data corrupt", path)
			}
			verified++
		}
	}
	fmt.Printf("extracted and verified %d files in %.3f ms of virtual time\n",
		verified, sys.Seconds(procs.MaxEndTime())*1000)

	// A file that is unlinked while open stays readable until closed.
	victim := archiveDir + "/dir00/file00"
	fd, _ := cli.Open(victim, hare.ORdOnly, 0)
	if err := cli.Unlink(victim); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, err := cli.Read(fd, buf); err != nil || n == 0 {
		log.Fatalf("unlinked file unreadable: n=%d err=%v", n, err)
	}
	cli.Close(fd)
	fmt.Println("unlinked-but-open file remained readable (POSIX semantics preserved)")
}

// payloadChunk builds the deterministic archive contents: the stream is a
// repetition of this block, and every extracted file holds exactly one copy.
func payloadChunk() []byte {
	chunk := make([]byte, fileSize)
	for i := range chunk {
		chunk[i] = byte('A' + (i*7)%26)
	}
	return chunk
}
