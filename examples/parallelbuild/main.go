// Parallelbuild: a miniature `make -j` running on Hare (the scenario behind
// the paper's "build linux" benchmark).
//
// The coordinating make process creates a jobserver pipe whose descriptors
// are inherited by every compile job — a shared pipe across fork/exec is
// exactly the feature that prevents such builds from running on a plain
// network file system. Compile jobs are exec'd onto other cores through the
// scheduling servers, read their source file, burn CPU, and write an object
// file into a shared (distributed) directory; a final link step combines the
// objects.
//
// Run with: go run ./examples/parallelbuild
package main

import (
	"fmt"
	"log"

	hare "repro"
)

const (
	sourceFiles = 24
	sourceSize  = 4096
	jobs        = 6 // -j level: tokens in the jobserver pipe
)

func main() {
	cfg := hare.DefaultConfig()
	cfg.Cores = 8
	cfg.Servers = 8
	cfg.Placement = hare.PolicyRandom // the paper uses random placement for builds
	sys, err := hare.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	procs := sys.Procs()

	// Lay out the source tree.
	setup := procs.StartRoot(0, []string{"setup"}, func(p *hare.Proc) int {
		fs := p.FS
		for _, d := range []string{"/proj", "/proj/src", "/proj/obj"} {
			if err := fs.Mkdir(d, hare.MkdirOpt{Distributed: true}); err != nil {
				return 1
			}
		}
		src := make([]byte, sourceSize)
		for i := range src {
			src[i] = byte('a' + i%26)
		}
		for i := 0; i < sourceFiles; i++ {
			fd, err := fs.Open(fmt.Sprintf("/proj/src/unit%02d.c", i), hare.OCreate|hare.OWrOnly, hare.Mode644)
			if err != nil {
				return 1
			}
			if _, err := fs.Write(fd, src); err != nil {
				return 1
			}
			if err := fs.Close(fd); err != nil {
				return 1
			}
		}
		return 0
	})
	if setup.Wait() != 0 {
		log.Fatal("source tree setup failed")
	}

	// make: jobserver + one exec'd compile job per translation unit.
	build := procs.StartRoot(0, []string{"make", "-j", fmt.Sprint(jobs)}, func(p *hare.Proc) int {
		fs := p.FS
		jsR, jsW, err := fs.Pipe()
		if err != nil {
			return 1
		}
		if _, err := fs.Write(jsW, make([]byte, jobs)); err != nil {
			return 1
		}

		var handles []*hare.Handle
		for i := 0; i < sourceFiles; i++ {
			unit := i
			h, err := p.Spawn([]string{"cc", fmt.Sprintf("unit%02d.c", unit)}, func(job *hare.Proc) int {
				return compile(job, unit, jsR, jsW)
			}, true)
			if err != nil {
				return 1
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if h.Wait() != 0 {
				return 1
			}
		}

		// Link.
		out, err := fs.Open("/proj/app", hare.OCreate|hare.OWrOnly, hare.Mode755)
		if err != nil {
			return 1
		}
		buf := make([]byte, sourceSize/2)
		for i := 0; i < sourceFiles; i++ {
			ofd, err := fs.Open(fmt.Sprintf("/proj/obj/unit%02d.o", i), hare.ORdOnly, 0)
			if err != nil {
				return 1
			}
			if _, err := fs.Read(ofd, buf); err != nil {
				return 1
			}
			fs.Close(ofd)
			if _, err := fs.Write(out, buf); err != nil {
				return 1
			}
		}
		fs.Close(out)
		fs.Close(jsR)
		fs.Close(jsW)
		return 0
	})
	if build.Wait() != 0 {
		log.Fatal("build failed")
	}

	cli := sys.NewClient(0)
	st, err := cli.Stat("/proj/app")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built /proj/app (%d bytes) from %d units with %d jobserver tokens\n", st.Size, sourceFiles, jobs)
	fmt.Printf("virtual build time: %.3f ms across %d cores\n",
		sys.Seconds(procs.MaxEndTime())*1000, cfg.Cores)
}

// compile is one cc invocation: acquire a jobserver token, read the source,
// spin the CPU, emit the object file, release the token.
func compile(job *hare.Proc, unit int, jsR, jsW hare.FD) int {
	fs := job.FS
	tok := make([]byte, 1)
	if n, err := fs.Read(jsR, tok); err != nil || n != 1 {
		return 1
	}
	defer fs.Write(jsW, tok)

	src := fmt.Sprintf("/proj/src/unit%02d.c", unit)
	fd, err := fs.Open(src, hare.ORdOnly, 0)
	if err != nil {
		return 1
	}
	buf := make([]byte, sourceSize)
	if _, err := fs.Read(fd, buf); err != nil {
		return 1
	}
	fs.Close(fd)

	job.Compute(2_000_000) // ~0.8 ms of compiler work

	ofd, err := fs.Open(fmt.Sprintf("/proj/obj/unit%02d.o", unit), hare.OCreate|hare.OWrOnly, hare.Mode644)
	if err != nil {
		return 1
	}
	if _, err := fs.Write(ofd, buf[:sourceSize/2]); err != nil {
		return 1
	}
	fs.Close(ofd)
	return 0
}
