// Command hare-sloc prints the source-line breakdown of this repository by
// component, the analogue of the paper's Figure 4.
//
// Usage:
//
//	hare-sloc [-tests] [path]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	tests := flag.Bool("tests", false, "include _test.go files in the count")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	t, err := bench.Figure4(root, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hare-sloc:", err)
		os.Exit(1)
	}
	fmt.Println(t.Render())
}
