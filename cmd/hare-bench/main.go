// Command hare-bench regenerates the tables and figures of the paper's
// evaluation section (§5) on the simulated machine.
//
// Usage:
//
//	hare-bench [-fig N] [-scale F] [-cores N] [-bench name] [-durability]
//	           [-pipeline] [-datapath] [-elastic] [-failover] [-obs]
//	           [-baseline path] [-trace out.json]
//
// With no -fig flag every experiment is run in order. The -scale flag
// shrinks the workload iteration counts (1.0 reproduces the default sizes;
// smaller values finish faster), and -bench restricts the run to a single
// benchmark where applicable.
//
// The -durability flag runs the write-ahead-log figures instead of the
// paper's (the paper scopes durability out; DESIGN.md §6 describes the
// subsystem): a group-commit interval sweep showing logging overhead and
// flush amortization, a recovery-time comparison of pure log replay versus
// checkpoint + tail, and the self-verifying crash-injection workload that
// kills and recovers every file server mid-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/bench"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (4-15); 0 means all")
		scale      = flag.Float64("scale", 0.25, "workload scale factor (1.0 = full size)")
		cores      = flag.Int("cores", 40, "size of the simulated machine")
		benchName  = flag.String("bench", "", "restrict to a single benchmark (e.g. \"creates\")")
		repoRoot   = flag.String("root", ".", "repository root (for the Figure 4 SLOC count)")
		durability = flag.Bool("durability", false, "run the durability figures (group-commit sweep, recovery time, crash-injection check) instead of the paper's")
		pipeline   = flag.Bool("pipeline", false, "run the async-RPC pipelining sweep (on/off × server counts) instead of the paper's figures")
		datapath   = flag.Bool("datapath", false, "run the zero-waste data-path sweep (dirty-line writeback + version-skip invalidation, on/off × server counts) instead of the paper's figures")
		elastic    = flag.Bool("elastic", false, "run the elastic sweep (scale-out under load, ring vs modulo placement) instead of the paper's figures")
		failover   = flag.Bool("failover", false, "run the failover sweep (replication off/sync/async: shipping overhead, replay vs promotion stall) instead of the paper's figures")
		obs        = flag.Bool("obs", false, "run the tracing-overhead sweep (off vs 1-in-64 sampled vs full tracing) instead of the paper's figures")
		traceOut   = flag.String("trace", "", "run one benchmark (-bench, default smallfile) with full tracing and export the span tree as Chrome trace_event JSON to this path (open in Perfetto)")
		baseline   = flag.String("baseline", "", "with -pipeline, -datapath, -elastic, -obs or -scalesweep: also write the sweep as a JSON baseline to this path (e.g. BENCH_seed.json, BENCH_scale.json)")
		scaleSweep = flag.String("scalesweep", "", "run the harness-scaling sweep at these rungs (\"64\" or \"8:125000,64:1000000\"; \"default\" = the committed BENCH_scale.json rungs) instead of the paper's figures")
		parallel   = flag.Bool("parallel", false, "with -scalesweep: run under the parallel virtual-time engine instead of the serialized default")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path (see PROFILING.md)")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile at exit to this path (see PROFILING.md)")
	)
	flag.Parse()

	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hare-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hare-bench:", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProfile != "" {
		cpuStop := stopProfiles
		stopProfiles = func() {
			cpuStop()
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hare-bench:", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "hare-bench:", err)
			}
			f.Close()
		}
	}
	defer stopProfiles()

	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "hare-bench:", err)
		os.Exit(1)
	}

	if *scaleSweep != "" {
		if *fig != 0 || *durability || *pipeline || *datapath || *elastic || *failover || *obs || *traceOut != "" || *benchName != "" {
			fail(fmt.Errorf("-scalesweep runs its own figure set and cannot be combined with other figure-set flags"))
		}
		var rungs []bench.ScaleRung
		if *scaleSweep != "default" {
			var err error
			rungs, err = bench.ParseScaleRungs(*scaleSweep)
			if err != nil {
				fail(err)
			}
		}
		data, t, err := bench.ScaleSweepFigure(rungs, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		if *baseline != "" {
			if err := data.WriteBaseline(*baseline); err != nil {
				fail(err)
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		return
	}

	if *traceOut != "" {
		if *fig != 0 || *durability || *pipeline || *datapath || *elastic || *obs {
			fail(fmt.Errorf("-trace runs a single traced benchmark and cannot be combined with figure-set flags"))
		}
		var w workload.Workload = workload.SmallFile{}
		if *benchName != "" {
			var ok bool
			w, ok = workload.ByName(*benchName)
			if !ok {
				fail(fmt.Errorf("unknown benchmark %q; available: %v", *benchName, workload.Names()))
			}
		}
		opts := bench.DefaultHare(*cores)
		opts.Trace = trace.Config{Sample: 1}
		r, err := bench.RunWorkload(bench.HareFactory(opts), w, *scale)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := trace.WriteChrome(f, r.Spans); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println(latencyTable(r).Render())
		fmt.Printf("%d spans written to %s (load in Perfetto: ui.perfetto.dev)\n", len(r.Spans), *traceOut)
		return
	}

	if *obs {
		if *durability || *pipeline || *datapath || *elastic || *fig != 0 {
			fail(fmt.Errorf("-obs runs its own figure set and cannot be combined with -durability, -pipeline, -datapath, -elastic or -fig"))
		}
		var ws []workload.Workload
		if *benchName != "" {
			w, ok := workload.ByName(*benchName)
			if !ok {
				fail(fmt.Errorf("unknown benchmark %q; available: %v", *benchName, workload.Names()))
			}
			ws = []workload.Workload{w}
		}
		data, t, err := bench.ObsFigure(*scale, *cores, ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		if *baseline != "" {
			if err := data.WriteBaseline(*baseline); err != nil {
				fail(err)
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		return
	}

	if *failover {
		if *durability || *pipeline || *datapath || *elastic || *obs || *fig != 0 || *benchName != "" {
			fail(fmt.Errorf("-failover runs its own figure set and cannot be combined with -durability, -pipeline, -datapath, -elastic, -obs, -bench or -fig"))
		}
		data, t, err := bench.FailoverFigure(*scale, *cores)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		if *baseline != "" {
			if err := data.WriteBaseline(*baseline); err != nil {
				fail(err)
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		return
	}

	if *elastic {
		if *durability || *pipeline || *datapath || *fig != 0 || *benchName != "" {
			fail(fmt.Errorf("-elastic runs its own figure set and cannot be combined with -durability, -pipeline, -datapath, -bench or -fig"))
		}
		data, t, err := bench.ElasticFigure(*scale, *cores, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		if *baseline != "" {
			if err := data.WriteBaseline(*baseline); err != nil {
				fail(err)
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		return
	}

	if *datapath {
		if *durability || *pipeline || *fig != 0 {
			fail(fmt.Errorf("-datapath runs its own figure set and cannot be combined with -durability, -pipeline or -fig"))
		}
		var ws []workload.Workload
		if *benchName != "" {
			w, ok := workload.ByName(*benchName)
			if !ok {
				fail(fmt.Errorf("unknown benchmark %q; available: %v", *benchName, workload.Names()))
			}
			ws = []workload.Workload{w}
		}
		data, t, err := bench.DatapathFigure(*scale, *cores, nil, ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		if *baseline != "" {
			if err := data.WriteBaseline(*baseline); err != nil {
				fail(err)
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		return
	}

	if *pipeline {
		if *durability || *fig != 0 {
			fail(fmt.Errorf("-pipeline runs its own figure set and cannot be combined with -durability or -fig"))
		}
		var ws []workload.Workload
		if *benchName != "" {
			w, ok := workload.ByName(*benchName)
			if !ok {
				fail(fmt.Errorf("unknown benchmark %q; available: %v", *benchName, workload.Names()))
			}
			ws = []workload.Workload{w}
		}
		data, t, err := bench.PipelineFigure(*scale, *cores, nil, ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		if *baseline != "" {
			if err := data.WriteBaseline(*baseline); err != nil {
				fail(err)
			}
			fmt.Printf("baseline written to %s\n", *baseline)
		}
		return
	}

	if *durability {
		if *benchName != "" || *fig != 0 {
			fail(fmt.Errorf("-durability runs its own figure set and cannot be combined with -bench or -fig"))
		}
		t, err := bench.DurabilityOverhead(*scale, *cores, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		t, err = bench.RecoveryTime(*scale, *cores)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		t, err = bench.CrashWorkloadCheck(*scale, *cores)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
		return
	}

	ws := workload.All()
	if *benchName != "" {
		w, ok := workload.ByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; available: %v\n", *benchName, workload.Names())
			os.Exit(2)
		}
		for _, fw := range workload.FaultBenchmarks() {
			if fw.Name() == w.Name() {
				fail(fmt.Errorf("benchmark %q needs a fault-injecting backend; run it via -durability", w.Name()))
			}
		}
		ws = []workload.Workload{w}
	}

	run := func(n int) bool { return *fig == 0 || *fig == n }

	if run(4) {
		t, err := bench.Figure4(*repoRoot, false)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
	if run(5) {
		t, err := bench.Figure5(*scale)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
	if run(6) {
		coreCounts := []int{1, 2, 5, 10, 20, *cores}
		_, t, err := bench.Figure6(*scale, coreCounts, ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
	if run(7) {
		t, err := bench.Figure7(*scale, *cores, nil, ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
	if run(8) {
		t, err := bench.Figure8(*scale, ws)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
	if run(9) || run(10) || run(11) || run(12) || run(13) || run(14) {
		_, figs, summary, err := bench.AblateTechniques(*scale, *cores, ws)
		if err != nil {
			fail(err)
		}
		for i, ft := range figs {
			if run(10 + i) {
				fmt.Println(ft.Render())
			}
		}
		if run(9) {
			fmt.Println(summary.Render())
		}
	}
	if run(15) {
		t, err := bench.Figure15(*scale, *cores, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
}

// latencyTable renders the per-op tail-latency quantiles of a traced run.
func latencyTable(r bench.Result) *bench.Table {
	t := &bench.Table{
		Title:   fmt.Sprintf("%s on %s: per-op latency (virtual cycles)", r.Benchmark, r.Backend),
		Columns: []string{"op", "n", "p50", "p95", "p99", "p999", "max"},
		Note:    "power-of-two histogram percentiles: each estimate is within one bucket (2x) of the exact rank.",
	}
	ops := make([]string, 0, len(r.Lat))
	for op := range r.Lat {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		q := r.Lat[op]
		t.AddRow(op, fmt.Sprintf("%d", q.N), cyc(q.P50), cyc(q.P95), cyc(q.P99), cyc(q.P999), cyc(q.Max))
	}
	return t
}

func cyc(v uint64) string { return fmt.Sprintf("%d", v) }
