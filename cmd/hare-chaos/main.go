// Command hare-chaos runs the deterministic chaos harness (DESIGN.md §10)
// outside the test suite: long local soaks over many seeds and technique
// configurations, and one-line reproduction of a failing run.
//
// Usage:
//
//	hare-chaos [-seeds N] [-seed-start S] [-configs N] [-duration D] [-v]
//	           [-procs N] [-rounds N] [-ops N] [-cores N] [-servers N]
//	           [-max-servers N] [-delay-pct P] [-dup-pct P] [-max-delay C]
//	           [-group-commit C] [-repl sync|async] [-parallel] [-trace-dir D]
//	hare-chaos -repro seed,techbits,policy[,replmode] [-dump-plan] [-trace-dir D]
//
// The default invocation sweeps -seeds seeds across -configs sampled
// technique/policy configurations and reports every failure as a
// `seed,techbits,policy` tuple. With -repl the deployment runs shard
// replication in the named mode and the schedule gains failover events (the
// tuple grows a fourth token). With -parallel every run executes under the
// parallel virtual-time engine (DESIGN.md §13); the tuple does not encode the
// engine — rerun the same tuple with and without the flag to compare them.
// With -duration the sweep repeats with fresh seeds until the wall-clock
// budget is spent (a soak). With -repro the named tuple is rebuilt
// bit-for-bit and run once — the same plan the failing run executed,
// byte-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		seeds       = flag.Int("seeds", 25, "number of seeds per configuration")
		seedStart   = flag.Uint64("seed-start", 1, "first seed value")
		configs     = flag.Int("configs", 8, "sampled technique/policy configurations (0 = the full 64-point matrix)")
		duration    = flag.Duration("duration", 0, "soak: repeat with fresh seeds until this much wall-clock time has passed")
		verbose     = flag.Bool("v", false, "print a line for every run, not only failures")
		repro       = flag.String("repro", "", "run exactly one failing tuple (seed,techbits,policy)")
		dumpPlan    = flag.Bool("dump-plan", false, "with -repro: print the derived op trace and fault schedule before running")
		procs       = flag.Int("procs", 0, "worker processes per round (0 = default)")
		rounds      = flag.Int("rounds", 0, "traffic rounds per run (0 = default)")
		ops         = flag.Int("ops", 0, "ops per process per round (0 = default)")
		cores       = flag.Int("cores", 0, "simulated cores (0 = default)")
		servers     = flag.Int("servers", 0, "initial file servers (0 = default)")
		maxServers  = flag.Int("max-servers", 0, "server growth headroom (0 = default)")
		delayPct    = flag.Int("delay-pct", -1, "percent of messages delayed (-1 = default)")
		dupPct      = flag.Int("dup-pct", -1, "percent of idempotent requests duplicated (-1 = default)")
		maxDelay    = flag.Int64("max-delay", -1, "jitter bound in cycles (-1 = default)")
		groupCommit = flag.Int64("group-commit", 0, "WAL group-commit interval in cycles")
		replMode    = flag.String("repl", "", "run with shard replication (sync or async): failover events join the schedule")
		parallel    = flag.Bool("parallel", false, "run every tuple under the parallel virtual-time engine (DESIGN.md §13)")
		traceDir    = flag.String("trace-dir", "", "record a full request trace per run and dump failing runs' span trees here (Chrome JSON + canonical encoding)")
	)
	flag.Parse()

	base := chaos.DefaultConfig(0)
	if *procs > 0 {
		base.Procs = *procs
	}
	if *rounds > 0 {
		base.Rounds = *rounds
	}
	if *ops > 0 {
		base.OpsPerRound = *ops
	}
	if *cores > 0 {
		base.Cores = *cores
	}
	if *servers > 0 {
		base.Servers = *servers
	}
	if *maxServers > 0 {
		base.MaxServers = *maxServers
	}
	if *delayPct >= 0 {
		base.DelayPercent = *delayPct
	}
	if *dupPct >= 0 {
		base.DupPercent = *dupPct
	}
	if *maxDelay >= 0 {
		base.MaxDelay = sim.Cycles(*maxDelay)
	}
	if *groupCommit > 0 {
		base.GroupCommit = sim.Cycles(*groupCommit)
	}
	if *replMode != "" {
		m, ok := repl.ParseMode(*replMode)
		if !ok || m == repl.Off {
			fmt.Fprintf(os.Stderr, "hare-chaos: -repl %q must be sync or async\n", *replMode)
			os.Exit(2)
		}
		base.Replication = m
	}
	base.Parallel = *parallel

	if *repro != "" {
		seed, tech, pol, rmode, err := chaos.ParseTuple(*repro)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hare-chaos:", err)
			os.Exit(2)
		}
		cfg := chaos.WithTuple(base, seed, tech, pol, rmode)
		if *traceDir != "" {
			cfg.Trace = trace.Config{Sample: 1, Ring: 1 << 18}
		}
		if *dumpPlan {
			os.Stdout.Write(chaos.NewPlan(cfg).Encode())
		}
		rep, err := chaos.Run(cfg)
		if *traceDir != "" && rep != nil {
			if p, derr := chaos.DumpTrace(*traceDir, cfg.Tuple(), rep.Spans); derr == nil {
				fmt.Printf("trace: %s\n", p)
			} else {
				fmt.Fprintln(os.Stderr, "hare-chaos: trace dump:", derr)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("PASS tuple=%s ops=%d events=%d delayed=%d dups=%d epoch=%d servers=%d\n",
			cfg.Tuple(), rep.Ops, rep.Events, rep.Faults.Delayed, rep.Faults.Duplicated, rep.Epoch, rep.Servers)
		return
	}

	var cfgs []chaos.Config
	if *configs <= 0 {
		cfgs = chaos.MatrixConfigs(base)
	} else {
		cfgs = chaos.SampleConfigs(base, *configs)
	}

	out := os.Stdout
	logw := io.Writer(io.Discard)
	if *verbose {
		logw = out
	}

	start := time.Now()
	nextSeed := *seedStart
	total, failed := 0, []string{}
	for {
		seedList := make([]uint64, *seeds)
		for i := range seedList {
			seedList[i] = nextSeed
			nextSeed++
		}
		failed = append(failed, chaos.RunMatrixTraced(logw, cfgs, seedList, *traceDir)...)
		total += len(cfgs) * len(seedList)
		if *duration == 0 || time.Since(start) >= *duration {
			break
		}
	}

	fmt.Fprintf(out, "hare-chaos: %d runs (%d configs), %d failures, %s\n",
		total, len(cfgs), len(failed), time.Since(start).Round(time.Millisecond))
	if len(failed) > 0 {
		for _, tuple := range failed {
			fmt.Fprintf(out, "FAIL tuple=%s\n      repro: hare-chaos -repro %s\n", tuple, tuple)
		}
		os.Exit(1)
	}
}
