// Command hare-shell is a small interactive shell over a Hare deployment,
// useful for exploring the file system's behaviour by hand (distributed
// directories, inode placement, server statistics).
//
// Usage:
//
//	hare-shell [-cores N] [-servers N] [-maxservers N] [-ring] [-split]
//	           [-repl mode] [-trace N]
//
// Commands: help, ls, tree, cat, write, append, mkdir, mkdir -d, rm, rmdir,
// mv, stat, cd, pwd, core, servers, top, stats, addserver, rmserver,
// replicas, failover, exit.
//
// With -maxservers headroom the fleet is elastic: addserver grows it online
// (directory shards migrate to the new member) and rmserver drains one; the
// servers command prints the live placement epoch, per-server shard counts,
// load, and migration traffic.
//
// With -repl sync (or async) the deployment runs durability plus WAL-shipped
// follower replicas (DESIGN.md §12): replicas shows each primary's follower
// and shipping horizons, and `failover N` crashes server N (if it is still
// up) and promotes its replica, printing the stall and the published epoch.
//
// Tracing is on by default (every op; -trace N samples 1-in-N, -trace 0
// turns it off): top shows live per-server queue depth, shard counts and
// service/queueing percentiles, and stats shows per-op latency percentiles
// as seen by this shell's operations.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/place"
	"repro/internal/repl"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		cores      = flag.Int("cores", 8, "number of cores in the simulated machine")
		servers    = flag.Int("servers", 0, "number of file servers (default: one per core)")
		maxServers = flag.Int("maxservers", 0, "server-count ceiling for online growth (default: no headroom)")
		ring       = flag.Bool("ring", false, "place directory shards by consistent hashing instead of modulo")
		split      = flag.Bool("split", false, "dedicate cores to the file servers instead of timesharing")
		replMode   = flag.String("repl", "", "run with durability and shard replication (sync or async): enables replicas/failover")
		traceN     = flag.Int("trace", 1, "trace 1-in-N operations for top/stats (0 = tracing off)")
	)
	flag.Parse()

	policy := place.PolicyModulo
	if *ring {
		policy = place.PolicyRing
	}
	cfg := core.Config{
		Cores:       *cores,
		Servers:     *servers,
		MaxServers:  *maxServers,
		Timeshare:   !*split,
		Techniques:  core.AllTechniques(),
		Placement:   sched.PolicyRoundRobin,
		PlacePolicy: policy,
		Trace:       trace.Config{Sample: *traceN},
	}
	if *replMode != "" {
		m, ok := repl.ParseMode(*replMode)
		if !ok || m == repl.Off {
			fmt.Fprintf(os.Stderr, "hare-shell: -repl %q must be sync or async\n", *replMode)
			os.Exit(1)
		}
		cfg.Durability = core.Durability{Enabled: true}
		cfg.Replication = repl.Config{Mode: m}
	}
	sys, err := core.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hare-shell:", err)
		os.Exit(1)
	}
	sys.Start()
	defer sys.Stop()

	sh := &shell{sys: sys, core: sys.AppCores()[0]}
	sh.cli = sys.NewClient(sh.core)
	fmt.Printf("hare-shell: %d cores, %d servers (%s). Type 'help'.\n",
		sys.Config().Cores, sys.Config().Servers, mode(sys.Config().Timeshare))

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("hare:%s> ", sh.cli.Getcwd())
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func mode(timeshare bool) string {
	if timeshare {
		return "timeshare"
	}
	return "split"
}

type shell struct {
	sys  *core.System
	cli  fsapi.Client
	core int
}

func (s *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Println("commands: ls [path] | tree [path] | cat file | write file text... | append file text... |")
		fmt.Println("          mkdir [-d] dir | rm file | rmdir dir | mv old new | stat path | cd dir | pwd |")
		fmt.Println("          core N | servers | top | stats | addserver | rmserver N |")
		fmt.Println("          replicas | failover N | exit")
		return nil
	case "top":
		return s.top()
	case "stats":
		return s.latStats()
	case "pwd":
		fmt.Println(s.cli.Getcwd())
		return nil
	case "cd":
		return s.cli.Chdir(arg(args, 0, "/"))
	case "ls":
		return s.list(arg(args, 0, "."), false, "")
	case "tree":
		return s.list(arg(args, 0, "."), true, "")
	case "cat":
		if len(args) < 1 {
			return fmt.Errorf("usage: cat file")
		}
		return s.cat(args[0])
	case "write", "append":
		if len(args) < 2 {
			return fmt.Errorf("usage: %s file text...", cmd)
		}
		return s.write(args[0], strings.Join(args[1:], " "), cmd == "append")
	case "mkdir":
		dist := false
		if len(args) > 0 && args[0] == "-d" {
			dist = true
			args = args[1:]
		}
		if len(args) < 1 {
			return fmt.Errorf("usage: mkdir [-d] dir")
		}
		return s.cli.Mkdir(args[0], fsapi.MkdirOpt{Distributed: dist})
	case "rm":
		if len(args) < 1 {
			return fmt.Errorf("usage: rm file")
		}
		return s.cli.Unlink(args[0])
	case "rmdir":
		if len(args) < 1 {
			return fmt.Errorf("usage: rmdir dir")
		}
		return s.cli.Rmdir(args[0])
	case "mv":
		if len(args) < 2 {
			return fmt.Errorf("usage: mv old new")
		}
		return s.cli.Rename(args[0], args[1])
	case "stat":
		if len(args) < 1 {
			return fmt.Errorf("usage: stat path")
		}
		st, err := s.cli.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s, %d bytes, nlink %d, mode %o, server %d, inode %d\n",
			args[0], st.Type, st.Size, st.Nlink, st.Mode, st.Server, st.Ino)
		return nil
	case "core":
		if len(args) < 1 {
			return fmt.Errorf("usage: core N")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 || n >= s.sys.Config().Cores {
			return fmt.Errorf("core must be in [0, %d)", s.sys.Config().Cores)
		}
		cwd := s.cli.Getcwd()
		s.core = n
		s.cli = s.sys.NewClient(n)
		return s.cli.Chdir(cwd)
	case "servers":
		member := make(map[int]bool)
		for _, m := range s.sys.Members() {
			member[m] = true
		}
		fmt.Printf("epoch %d, policy %s, members %v\n",
			s.sys.Epoch(), s.sys.PlacementPolicy(), s.sys.Members())
		for i, st := range s.sys.ServerStats() {
			var total uint64
			for _, n := range st.Ops {
				total += n
			}
			role := "member"
			if !member[i] {
				role = "drained"
			}
			fmt.Printf("server %2d: %-7s %6d ops, %4d entries, %d invalidations", i, role, total, st.Entries, st.Invalidations)
			if st.MigInEntries > 0 || st.MigOutEntries > 0 {
				fmt.Printf(", migrated %d in / %d out", st.MigInEntries, st.MigOutEntries)
			}
			fmt.Println()
		}
		return nil
	case "addserver":
		id, err := s.sys.AddServer()
		if err != nil {
			return err
		}
		fmt.Printf("server %d joined; epoch now %d\n", id, s.sys.Epoch())
		return nil
	case "replicas":
		return s.replicas()
	case "failover":
		if len(args) < 1 {
			return fmt.Errorf("usage: failover N")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("failover: bad server id %q", args[0])
		}
		return s.failover(n)
	case "rmserver":
		if len(args) < 1 {
			return fmt.Errorf("usage: rmserver N")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("rmserver: bad server id %q", args[0])
		}
		if err := s.sys.RemoveServer(n); err != nil {
			return err
		}
		fmt.Printf("server %d drained; epoch now %d\n", n, s.sys.Epoch())
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func arg(args []string, i int, def string) string {
	if i < len(args) {
		return args[i]
	}
	return def
}

func (s *shell) list(path string, recurse bool, indent string) error {
	ents, err := s.cli.ReadDir(path)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		fmt.Printf("%s%-30s %s\n", indent, ent.Name, ent.Type)
		if recurse && ent.Type == fsapi.TypeDir {
			if err := s.list(path+"/"+ent.Name, true, indent+"  "); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *shell) cat(path string) error {
	fd, err := s.cli.Open(path, fsapi.ORdOnly, 0)
	if err != nil {
		return err
	}
	defer s.cli.Close(fd)
	buf := make([]byte, 4096)
	for {
		n, err := s.cli.Read(fd, buf)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		os.Stdout.Write(buf[:n])
	}
	fmt.Println()
	return nil
}

// top is the live per-server view: queue depth, shard count, ops served,
// and — when tracing is on — service and queueing percentiles.
func (s *shell) top() error {
	fmt.Printf("epoch %d, %d servers, clock %d cycles\n",
		s.sys.Epoch(), s.sys.NumServers(), s.sys.MaxServerClock())
	tr := s.sys.Tracer()
	var svc, queue map[int]stats.Quantiles
	if tr != nil {
		svc, queue = tr.ServerQuantiles()
	}
	depths := s.sys.QueueDepths()
	for i, st := range s.sys.ServerStats() {
		var total uint64
		for _, n := range st.Ops {
			total += n
		}
		depth := 0
		if i < len(depths) {
			depth = depths[i]
		}
		fmt.Printf("server %2d: queue %3d, %6d ops, %4d entries", i, depth, total, st.Entries)
		if q, ok := svc[i]; ok && q.N > 0 {
			fmt.Printf(", service p50/p99 %d/%d cyc", q.P50, q.P99)
		}
		if q, ok := queue[i]; ok && q.N > 0 {
			fmt.Printf(", queued p50/p99 %d/%d cyc", q.P50, q.P99)
		}
		fmt.Println()
	}
	if tr == nil {
		fmt.Println("(tracing off: rerun without -trace 0 for latency percentiles)")
	}
	return nil
}

// latStats prints per-op latency percentiles from the tracer's histograms.
func (s *shell) latStats() error {
	tr := s.sys.Tracer()
	if tr == nil {
		return fmt.Errorf("tracing is off (rerun without -trace 0)")
	}
	lat := tr.OpQuantiles()
	if len(lat) == 0 {
		fmt.Println("no traced operations yet")
		return nil
	}
	fmt.Printf("%-10s %8s %10s %10s %10s %10s\n", "op", "n", "p50", "p95", "p99", "max")
	for _, op := range tr.OpNames() {
		q := lat[op]
		fmt.Printf("%-10s %8d %10d %10d %10d %10d\n", op, q.N, q.P50, q.P95, q.P99, q.Max)
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Printf("(span ring dropped %d spans; histograms kept counting)\n", d)
	}
	return nil
}

// replicas prints each primary's follower and its shipping horizons: the
// last record the primary committed, the horizon the follower has acked,
// the lag between them, and the ship/resync message counts.
func (s *shell) replicas() error {
	rc := s.sys.Replication()
	if !rc.Enabled() {
		return fmt.Errorf("replication is off (rerun with -repl sync or -repl async)")
	}
	fmt.Printf("replication %s, window %d, epoch %d\n", rc.Mode, rc.Window, s.sys.Epoch())
	for _, rs := range s.sys.ReplicaStats() {
		state := "up"
		if s.sys.Crashed(rs.Server) {
			state = "down"
		}
		fmt.Printf("server %2d (%s): follower %2d, lsn %6d, durable %6d, lag %4d, %6d ships, %d resyncs",
			rs.Server, state, rs.Follower, rs.LastLSN, rs.Durable, rs.Lag(), rs.Ships, rs.Resyncs)
		if at, ok := s.sys.ReplLastHeard(rs.Server); ok {
			fmt.Printf(", heard @%d", at)
		}
		fmt.Println()
	}
	return nil
}

// failover crashes server n (if it is still up) and promotes its replica,
// reporting the promotion stall, the published epoch, and any acked records
// the promotion lost (always zero under sync).
func (s *shell) failover(n int) error {
	if !s.sys.Replication().Enabled() {
		return fmt.Errorf("replication is off (rerun with -repl sync or -repl async)")
	}
	if !s.sys.Crashed(n) {
		if err := s.sys.Crash(n); err != nil {
			return err
		}
		fmt.Printf("server %d crashed\n", n)
	}
	rep, err := s.sys.Failover(n)
	if err != nil {
		return err
	}
	how := fmt.Sprintf("promoted replica from follower %d", rep.Follower)
	if rep.Fallback {
		how = "replica unusable; rebuilt by WAL replay"
	}
	fmt.Printf("server %d back up: %s\n", rep.Server, how)
	fmt.Printf("  stall %.3f ms (%d cycles), epoch now %d, lsn %d/%d durable, %d acked records lost\n",
		s.sys.Seconds(rep.StallCycles)*1000, rep.StallCycles, rep.Epoch,
		rep.DurableLSN, rep.LastLSN, rep.LostRecords)
	return nil
}

func (s *shell) write(path, text string, appendMode bool) error {
	flags := fsapi.OCreate | fsapi.OWrOnly
	if appendMode {
		flags |= fsapi.OAppend
	} else {
		flags |= fsapi.OTrunc
	}
	fd, err := s.cli.Open(path, flags, fsapi.Mode644)
	if err != nil {
		return err
	}
	defer s.cli.Close(fd)
	_, err = s.cli.Write(fd, []byte(text))
	return err
}
